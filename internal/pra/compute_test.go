package pra

import (
	"math"
	"strings"
	"testing"

	"irdb/internal/catalog"
	"irdb/internal/engine"
	"irdb/internal/expr"
	"irdb/internal/relation"
	"irdb/internal/text"
	"irdb/internal/vector"
)

func docsBase(cat *catalog.Catalog) *Base {
	cat.Put("docs", relation.NewBuilder(
		[]string{"docID", "data"},
		[]vector.Kind{vector.Int64, vector.String},
	).
		Add(1, "Wooden train set").
		AddP(0.5, 2, "toy cars and toys").
		Build())
	return NewBase("docs", engine.NewScan("docs"), "docID", "data")
}

func TestMapComputedColumns(t *testing.T) {
	cat := catalog.New(0)
	base := docsBase(cat)
	ctx := engine.NewCtx(cat)

	m := NewMap(base,
		MapCol{As: "id2", E: expr.Arith{Op: expr.Mul, L: expr.ColumnAt(1), R: expr.Int(2)}},
		MapCol{As: "upper", E: expr.NewCall("ucase", expr.ColumnAt(2))},
	)
	if got := strings.Join(m.Schema(), ","); got != "id2,upper" {
		t.Errorf("schema = %s", got)
	}
	rel := compileAndRun(t, ctx, m)
	if rel.Col(0).Vec.Format(1) != "4" {
		t.Errorf("computed column = %s", rel.Format(-1))
	}
	if rel.Col(1).Vec.Format(0) != "WOODEN TRAIN SET" {
		t.Errorf("ucase = %s", rel.Col(1).Vec.Format(0))
	}
	// probabilities pass through
	if rel.Prob()[1] != 0.5 {
		t.Errorf("prob = %v", rel.Prob())
	}
	// errors
	if _, err := NewMap(base).Compile(); err == nil {
		t.Error("MAP with no columns should fail")
	}
	bad := NewMap(base, MapCol{As: "x", E: expr.ColumnAt(9)})
	if _, err := bad.Compile(); err == nil {
		t.Error("MAP $9 should fail")
	}
}

func TestGroupAggregates(t *testing.T) {
	cat := catalog.New(0)
	cat.Put("t", relation.NewBuilder(
		[]string{"k", "v"}, []vector.Kind{vector.String, vector.Int64}).
		AddP(0.5, "a", 10).AddP(0.5, "a", 20).Add("b", 5).Build())
	base := NewBase("t", engine.NewScan("t"), "k", "v")
	ctx := engine.NewCtx(cat)

	g := NewGroup(base, None, []int{1},
		GroupAgg{Kind: AggCount, As: "n"},
		GroupAgg{Kind: AggSum, Col: 2, As: "total"},
		GroupAgg{Kind: AggAvg, Col: 2, As: "mean"},
		GroupAgg{Kind: AggMin, Col: 2, As: "lo"},
		GroupAgg{Kind: AggMax, Col: 2, As: "hi"},
		GroupAgg{Kind: AggSumProb, As: "sp"},
		GroupAgg{Kind: AggMaxProb, As: "mp"},
	)
	if got := strings.Join(g.Schema(), ","); got != "k,n,total,mean,lo,hi,sp,mp" {
		t.Errorf("schema = %s", got)
	}
	rel := compileAndRun(t, ctx, g)
	if rel.NumRows() != 2 {
		t.Fatalf("groups = %d", rel.NumRows())
	}
	row := map[string]string{}
	for c := 0; c < rel.NumCols(); c++ {
		row[rel.Col(c).Name] = rel.Col(c).Vec.Format(0) // group "a"
	}
	if row["n"] != "2" || row["total"] != "30" || row["mean"] != "15" ||
		row["lo"] != "10" || row["hi"] != "20" || row["sp"] != "1" || row["mp"] != "0.5" {
		t.Errorf("aggregates = %v", row)
	}
	// default assumption: certain output probability
	if rel.Prob()[0] != 1.0 {
		t.Errorf("certain group p = %g", rel.Prob()[0])
	}

	// probabilistic assumption
	gi := NewGroup(base, Independent, []int{1})
	rel2 := compileAndRun(t, ctx, gi)
	for i := 0; i < rel2.NumRows(); i++ {
		if rel2.Col(0).Vec.Format(i) == "a" {
			if math.Abs(rel2.Prob()[i]-0.75) > 1e-12 {
				t.Errorf("independent group p = %g, want 0.75", rel2.Prob()[i])
			}
		}
	}

	// errors
	if _, err := NewGroup(base, None, []int{9}).Compile(); err == nil {
		t.Error("GROUP key $9 should fail")
	}
	if _, err := NewGroup(base, None, []int{1}, GroupAgg{Kind: AggSum, Col: 9, As: "x"}).Compile(); err == nil {
		t.Error("sum($9) should fail")
	}
	if _, err := NewGroup(base, None, []int{1}, GroupAgg{Kind: "median", As: "x"}).Compile(); err == nil {
		t.Error("unknown aggregate should fail")
	}
}

func TestTokenizeOp(t *testing.T) {
	cat := catalog.New(0)
	base := docsBase(cat)
	ctx := engine.NewCtx(cat)
	tok := NewTokenize(base, 1, 2, text.Default())
	if got := strings.Join(tok.Schema(), ","); got != "docID,token,pos" {
		t.Errorf("schema = %s", got)
	}
	rel := compileAndRun(t, ctx, tok)
	if rel.NumRows() != 7 {
		t.Fatalf("tokens = %d, want 7", rel.NumRows())
	}
	// doc 2's tokens inherit p=0.5
	for i := 0; i < rel.NumRows(); i++ {
		if rel.Col(0).Vec.Format(i) == "2" && rel.Prob()[i] != 0.5 {
			t.Errorf("token prob = %g", rel.Prob()[i])
		}
	}
	if _, err := NewTokenize(base, 9, 2, text.Default()).Compile(); err == nil {
		t.Error("TOKENIZE id $9 should fail")
	}
	if _, err := NewTokenize(base, 1, 9, text.Default()).Compile(); err == nil {
		t.Error("TOKENIZE data $9 should fail")
	}
}

func TestComputeStringRendering(t *testing.T) {
	cat := catalog.New(0)
	base := docsBase(cat)
	m := NewMap(base, MapCol{As: "term", E: expr.NewCall("lcase", expr.ColumnAt(2))})
	if !strings.Contains(m.String(), "MAP [lcase($2) as term]") {
		t.Errorf("MAP String = %s", m.String())
	}
	g := NewGroup(base, Disjoint, []int{1}, GroupAgg{Kind: AggCount, As: "n"})
	if !strings.Contains(g.String(), "GROUP DISJOINT [$1 ; count() as n]") {
		t.Errorf("GROUP String = %s", g.String())
	}
	tk := NewTokenize(base, 1, 2, text.Default())
	if !strings.Contains(tk.String(), "TOKENIZE [$1,$2]") {
		t.Errorf("TOKENIZE String = %s", tk.String())
	}
}
