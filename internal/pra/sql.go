package pra

import (
	"fmt"
	"strings"

	"irdb/internal/expr"
)

// ToSQL renders a PRA plan as the SQL a probabilistic relational database
// would run — the translation step the paper illustrates for SpinQL:
// "these [probability computations] are only made explicit upon
// translation into SQL" (section 2.3).
//
// Plans made of SELECT / JOIN / plain PROJECT / WEIGHT over base tables
// flatten into a single SELECT with a FROM list and a conjunctive WHERE,
// matching the paper's example translation. Deduplicating projections,
// unions, subtraction and Bayes emit nested sub-selects.
func ToSQL(n Node) (string, error) {
	q, err := emit(n)
	if err != nil {
		return "", err
	}
	return q.sql(), nil
}

// query is a single flattened SELECT block.
type query struct {
	selectCols []string // "t2.subject as docID"
	from       []string // "triples t1"
	where      []string
	probExpr   string // "t1.p * t2.p"
	// cols maps output position (0-based) to the SQL expression
	// addressing that column, and names holds output column names.
	cols  []string
	names []string
}

func (q *query) sql() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	sel := make([]string, 0, len(q.cols)+1)
	for i := range q.cols {
		if q.cols[i] == q.names[i] {
			sel = append(sel, q.cols[i])
		} else {
			sel = append(sel, fmt.Sprintf("%s as %s", q.cols[i], q.names[i]))
		}
	}
	sel = append(sel, fmt.Sprintf("%s as p", q.probExpr))
	b.WriteString(strings.Join(sel, ", "))
	b.WriteString("\nFROM ")
	b.WriteString(strings.Join(q.from, ", "))
	if len(q.where) > 0 {
		b.WriteString("\nWHERE ")
		b.WriteString(strings.Join(q.where, "\n  AND "))
	}
	return b.String()
}

var aliasCounter int

func emit(n Node) (*query, error) {
	switch x := n.(type) {
	case *Base:
		aliasCounter++
		alias := fmt.Sprintf("t%d", aliasCounter)
		q := &query{from: []string{x.Name + " " + alias}, probExpr: alias + ".p"}
		for _, c := range x.Cols {
			q.cols = append(q.cols, alias+"."+c)
			q.names = append(q.names, c)
		}
		return q, nil

	case *Select:
		q, err := emit(x.Child)
		if err != nil {
			return nil, err
		}
		cond, err := sqlExpr(x.Cond, q.cols)
		if err != nil {
			return nil, err
		}
		q.where = append(q.where, cond)
		return q, nil

	case *Join:
		lq, err := emit(x.L)
		if err != nil {
			return nil, err
		}
		rq, err := emit(x.R)
		if err != nil {
			return nil, err
		}
		out := &query{
			from:  append(append([]string{}, lq.from...), rq.from...),
			where: append(append([]string{}, lq.where...), rq.where...),
		}
		for _, c := range x.Conds {
			if c.L < 1 || c.L > len(lq.cols) || c.R < 1 || c.R > len(rq.cols) {
				return nil, fmt.Errorf("pra: JOIN condition $%d=$%d out of range", c.L, c.R)
			}
			out.where = append(out.where, fmt.Sprintf("%s = %s", lq.cols[c.L-1], rq.cols[c.R-1]))
		}
		out.cols = append(append([]string{}, lq.cols...), rq.cols...)
		out.names = joinNames(lq.names, rq.names)
		if x.Assumption == Max {
			out.probExpr = lq.probExpr
		} else {
			out.probExpr = lq.probExpr + " * " + rq.probExpr
		}
		return out, nil

	case *Project:
		q, err := emit(x.Child)
		if err != nil {
			return nil, err
		}
		out := &query{from: q.from, where: q.where, probExpr: q.probExpr}
		for _, c := range x.Cols {
			if c < 1 || c > len(q.cols) {
				return nil, fmt.Errorf("pra: PROJECT $%d out of range", c)
			}
			out.cols = append(out.cols, q.cols[c-1])
			out.names = append(out.names, q.names[c-1])
		}
		if x.Assumption == None {
			return out, nil
		}
		// Deduplicating projection: wrap in GROUP BY with the probability
		// aggregate of the assumption.
		inner := out.sql()
		agg := probAggSQL(x.Assumption)
		sub := &query{
			from:     []string{"(\n" + indent(inner) + "\n) sub"},
			probExpr: agg,
		}
		var groupCols []string
		for _, name := range out.names {
			sub.cols = append(sub.cols, name)
			sub.names = append(sub.names, name)
			groupCols = append(groupCols, name)
		}
		sub.where = nil
		q2 := sub.sql() + "\nGROUP BY " + strings.Join(groupCols, ", ")
		return opaque(q2, out.names), nil

	case *Weight:
		q, err := emit(x.Child)
		if err != nil {
			return nil, err
		}
		q.probExpr = fmt.Sprintf("%g * %s", x.Factor, parenthesize(q.probExpr))
		return q, nil

	case *Unite:
		lq, err := emit(x.L)
		if err != nil {
			return nil, err
		}
		rq, err := emit(x.R)
		if err != nil {
			return nil, err
		}
		rqAligned := *rq
		rqAligned.names = lq.names
		union := "(\n" + indent(lq.sql()) + "\nUNION ALL\n" + indent(rqAligned.sql()) + "\n) u"
		if x.Assumption == None {
			return opaque("SELECT * FROM "+union, lq.names), nil
		}
		sel := append(append([]string{}, lq.names...), probAggSQL(x.Assumption)+" as p")
		q2 := "SELECT " + strings.Join(sel, ", ") + "\nFROM " + union +
			"\nGROUP BY " + strings.Join(lq.names, ", ")
		return opaque(q2, lq.names), nil

	case *Subtract:
		lq, err := emit(x.L)
		if err != nil {
			return nil, err
		}
		rq, err := emit(x.R)
		if err != nil {
			return nil, err
		}
		rqAligned := *rq
		rqAligned.names = lq.names
		var conds []string
		for _, name := range lq.names {
			conds = append(conds, fmt.Sprintf("l.%s = r.%s", name, name))
		}
		q2 := fmt.Sprintf("SELECT %s, l.p * (1 - coalesce(r.p, 0)) as p\nFROM (\n%s\n) l LEFT JOIN (\n%s\n) r ON %s",
			prefixAll("l.", lq.names), indent(lq.sql()), indent(rqAligned.sql()), strings.Join(conds, " AND "))
		return opaque(q2, lq.names), nil

	case *Bayes:
		q, err := emit(x.Child)
		if err != nil {
			return nil, err
		}
		inner := q.sql()
		part := ""
		if len(x.Keys) > 0 {
			var keys []string
			for _, k := range x.Keys {
				if k < 1 || k > len(q.names) {
					return nil, fmt.Errorf("pra: BAYES $%d out of range", k)
				}
				keys = append(keys, q.names[k-1])
			}
			part = " PARTITION BY " + strings.Join(keys, ", ")
		}
		aggFn := "sum"
		if x.Norm == Max {
			aggFn = "max"
		}
		q2 := fmt.Sprintf("SELECT %s, p / %s(p) OVER (%s) as p\nFROM (\n%s\n) sub",
			strings.Join(q.names, ", "), aggFn, strings.TrimSpace(part), indent(inner))
		return opaque(q2, q.names), nil

	default:
		return nil, fmt.Errorf("pra: no SQL translation for %T", n)
	}
}

// opaque wraps fully rendered SQL so parents treat it as a subquery.
func opaque(sql string, names []string) *query {
	aliasCounter++
	alias := fmt.Sprintf("q%d", aliasCounter)
	q := &query{
		from:     []string{"(\n" + indent(sql) + "\n) " + alias},
		probExpr: alias + ".p",
	}
	for _, n := range names {
		q.cols = append(q.cols, alias+"."+n)
		q.names = append(q.names, n)
	}
	return q
}

func joinNames(l, r []string) []string {
	out := make([]string, 0, len(l)+len(r))
	seen := map[string]int{}
	for _, n := range l {
		seen[n]++
		out = append(out, n)
	}
	for _, n := range r {
		seen[n]++
		if seen[n] > 1 {
			n = fmt.Sprintf("%s_%d", n, seen[n])
		}
		out = append(out, n)
	}
	return out
}

func probAggSQL(a Assumption) string {
	switch a {
	case Independent:
		return "1 - exp(sum(ln(1 - p)))"
	case Disjoint:
		return "least(1, sum(p))"
	case Max:
		return "max(p)"
	case SumRaw:
		return "sum(p)"
	}
	return "max(p)"
}

func indent(s string) string {
	lines := strings.Split(s, "\n")
	for i := range lines {
		lines[i] = "  " + lines[i]
	}
	return strings.Join(lines, "\n")
}

func prefixAll(prefix string, names []string) string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = prefix + n
	}
	return strings.Join(out, ", ")
}

func parenthesize(s string) string {
	if strings.ContainsAny(s, " +-*/") {
		return "(" + s + ")"
	}
	return s
}

// sqlExpr renders a positional condition with $n replaced by the SQL
// column expressions of the current block.
func sqlExpr(e expr.Expr, cols []string) (string, error) {
	switch x := e.(type) {
	case expr.ColIdx:
		if x.Idx < 1 || x.Idx > len(cols) {
			return "", fmt.Errorf("pra: $%d out of range in condition", x.Idx)
		}
		return cols[x.Idx-1], nil
	case expr.Col:
		return x.Name, nil
	case expr.Lit:
		if s, ok := x.Value.(string); ok {
			return "'" + strings.ReplaceAll(s, "'", "''") + "'", nil
		}
		return x.String(), nil
	case expr.Cmp:
		l, err := sqlExpr(x.L, cols)
		if err != nil {
			return "", err
		}
		r, err := sqlExpr(x.R, cols)
		if err != nil {
			return "", err
		}
		op := x.Op.String()
		if op == "!=" {
			op = "<>"
		}
		return fmt.Sprintf("%s %s %s", l, op, r), nil
	case expr.And:
		l, err := sqlExpr(x.L, cols)
		if err != nil {
			return "", err
		}
		r, err := sqlExpr(x.R, cols)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s AND %s", l, r), nil
	case expr.Or:
		l, err := sqlExpr(x.L, cols)
		if err != nil {
			return "", err
		}
		r, err := sqlExpr(x.R, cols)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("(%s OR %s)", l, r), nil
	case expr.Not:
		c, err := sqlExpr(x.E, cols)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("NOT (%s)", c), nil
	case expr.Param:
		// Parameter placeholders render as the SQL named-parameter form.
		return ":" + x.Name, nil
	case expr.Arith:
		l, err := sqlExpr(x.L, cols)
		if err != nil {
			return "", err
		}
		r, err := sqlExpr(x.R, cols)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("(%s %s %s)", l, x.Op.String(), r), nil
	default:
		return "", fmt.Errorf("pra: no SQL rendering for expression %T", e)
	}
}

// ResetSQLAliases resets the alias counter so tests produce stable output.
func ResetSQLAliases() { aliasCounter = 0 }
