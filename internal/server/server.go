// Package server exposes search strategies over HTTP — the deployment
// shape of section 3, where "via the website's search-bar, users activate
// this strategy to find the items they are interested in" and a single VM
// serves 150,000 requests per day.
//
// Every request compiles its own plan, so concurrent requests never share
// mutable plan state; they share one engine.Ctx, which gives them the
// shared materialization cache (single-flighted, so a burst of identical
// cold queries computes each sub-plan once) and the shared worker pool
// bounding total intra-query parallelism across the whole process.
//
// Endpoints:
//
//	GET  /search?strategy=<name>&q=<keywords>&k=<n>  ranked results (JSON)
//	GET  /search?...&stream=1                        ranked results (ndjson frames)
//	GET  /strategies                                 installed strategies
//	POST /strategies                                 install a strategy (JSON body)
//	POST /append                                     live ingest: append/delete triples, append docs
//	GET  /stats                                      catalog + cache + executor + wal/ingest statistics
//	GET  /healthz                                    liveness (200 while the process serves)
//	GET  /readyz                                     readiness (503 before warm-up and during drain)
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"irdb/internal/engine"
	"irdb/internal/fault"
	"irdb/internal/faultpoint"
	"irdb/internal/ingest"
	"irdb/internal/memory"
	"irdb/internal/strategy"
	"irdb/internal/text"
	"irdb/internal/triple"
)

// Server routes search requests to installed strategies over one shared
// execution context (and therefore one shared materialization cache, so
// concurrent requests reuse each other's on-demand indexes).
//
// Admission is gated by a request-level semaphore (default 2× the engine's
// worker-pool size) shared by /search and strategy installation: excess
// requests queue instead of oversubscribing the pool, so saturation shows
// up as predictable queueing latency rather than a throughput collapse.
// /stats bypasses admission so the queue stays observable under load. The
// current queue depth and in-flight count are exported via /stats.
type Server struct {
	ctx      *engine.Ctx
	synonyms text.SynonymDict

	// ingestMgr serializes live ingest behind POST /append; nil keeps the
	// server read-only (the endpoint answers 501).
	ingestMgr *ingest.Manager

	mu         sync.RWMutex
	strategies map[string]*strategy.Strategy

	requests sync.Map // strategy name -> *counter

	inFlight    chan struct{} // request-level admission semaphore
	queueDepth  atomic.Int64  // requests currently waiting for a slot
	queuedTotal atomic.Int64  // requests that ever had to wait
	queueWaitNS atomic.Int64  // cumulative time requests spent queued

	// timeout bounds each admitted request's engine work (0 = none). The
	// deadline starts when the request is admitted, not while it queues.
	timeout time.Duration

	// admissionWait bounds how long a request may queue for an admission
	// slot (0 = unbounded). A request whose wait would exceed it — or whose
	// own deadline expires sooner — is shed fast with 503 + Retry-After
	// instead of holding a connection open for an answer it will never get
	// in time.
	admissionWait time.Duration

	// draining is set by Shutdown: no new request is admitted, in-flight
	// requests finish. /stats keeps answering so the drain is observable.
	// drainMu orders admission against Shutdown: admitters register with
	// active under the read lock, Shutdown flips draining under the write
	// lock, so every admitted request is either seen by Shutdown's Wait or
	// refused — active.Add can never race active.Wait at zero.
	drainMu  sync.RWMutex
	draining atomic.Bool
	// active tracks admitted requests so Shutdown can wait for them.
	active sync.WaitGroup

	cancelled     atomic.Int64 // requests aborted by client disconnect
	timedOut      atomic.Int64 // requests aborted by the server deadline
	shed          atomic.Int64 // requests refused by admission-wait bound or drain
	handlerPanics atomic.Int64 // panics the recovery middleware contained

	// Per-cause shed breakdown (shed is the total): a client deciding how
	// hard to retry needs to know whether 503s come from overload (back
	// off and retry) or drain (find another replica).
	shedDrain    atomic.Int64 // refused because the server is draining
	shedWait     atomic.Int64 // refused because the queue wait bound expired
	shedDeadline atomic.Int64 // refused because the request's deadline had already passed
	budgetDenied atomic.Int64 // queries aborted by the per-query memory budget

	// memPool/perQueryBytes govern per-request memory (nil = ungoverned);
	// see SetMemory.
	memPool       *memory.Pool
	perQueryBytes int64

	// ready gates /readyz: the process answers /healthz as soon as it can
	// serve HTTP, but reports ready only once warm-up (data load, WAL
	// recovery) finished — and not-ready again while draining.
	ready atomic.Bool
}

type counter struct {
	mu      sync.Mutex
	n       int64
	totalNS int64
}

// New creates a server over the given execution context. The request
// semaphore defaults to twice the context's effective worker-pool size.
func New(ctx *engine.Ctx, synonyms text.SynonymDict) *Server {
	par := ctx.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	s := &Server{
		ctx:        ctx,
		synonyms:   synonyms,
		strategies: make(map[string]*strategy.Strategy),
		inFlight:   make(chan struct{}, 2*par),
	}
	// Ready by default: servers with a warm-up phase call SetReady(false)
	// before listening and SetReady(true) once recovery/load completes.
	s.ready.Store(true)
	return s
}

// SetMaxInFlight resizes the request admission semaphore. Must be called
// before the server starts handling requests.
func (s *Server) SetMaxInFlight(n int) {
	if n < 1 {
		n = 1
	}
	s.inFlight = make(chan struct{}, n)
}

// SetIngest enables POST /append, routing mutations through the given
// manager (which owns the WAL when one is configured). Must be called
// before the server starts handling requests.
func (s *Server) SetIngest(m *ingest.Manager) { s.ingestMgr = m }

// SetTimeout sets the per-request engine deadline (0 disables). Must be
// called before the server starts handling requests. A request exceeding
// it aborts mid-plan — the engine checks the context at chunk boundaries
// — and answers 504.
func (s *Server) SetTimeout(d time.Duration) { s.timeout = d }

// SetAdmissionWait bounds how long a request may queue for an admission
// slot (0 = unbounded, the default). Must be called before the server
// starts handling requests.
func (s *Server) SetAdmissionWait(d time.Duration) { s.admissionWait = d }

// SetMemory governs per-request memory: each admitted /search reserves
// up to perQueryBytes (0 = bounded only by the pool) from a shared pool
// capped at poolBytes (0 = track-only), and a query whose intermediate
// state would exceed either bound aborts cleanly with 507 instead of
// pressuring the process toward OOM. Must be called before the server
// starts handling requests.
func (s *Server) SetMemory(poolBytes, perQueryBytes int64) {
	if poolBytes <= 0 && perQueryBytes <= 0 {
		s.memPool, s.perQueryBytes = nil, 0
		return
	}
	s.memPool = memory.NewPool(poolBytes)
	s.perQueryBytes = perQueryBytes
}

// SetReady flips the /readyz answer. A server with a warm-up phase
// (snapshot load, WAL recovery, corpus install) starts not-ready so load
// balancers hold traffic, then flips ready once it can answer searches.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Ready reports the current readiness (false while draining).
func (s *Server) Ready() bool { return s.ready.Load() && !s.draining.Load() }

// Shutdown stops admitting requests and waits for the in-flight ones to
// drain, or for ctx to expire (returning its error with requests still
// running). New requests during and after the drain are answered 503 with
// Retry-After; /stats keeps working so the drain is observable. Shutdown
// does not close listeners — pair it with http.Server.Shutdown, which
// stops accepting connections while this drains the query work.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining.Store(true)
	s.drainMu.Unlock()
	done := make(chan struct{})
	go func() {
		// Contain any panic at this boundary (WaitGroup misuse is the
		// only candidate): it must not kill a server mid-drain, and the
		// deferred close still releases the select below.
		defer close(done)
		var err error
		defer fault.Recover("shutdown drain", &err)
		s.active.Wait()
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// admitResult says how acquire disposed of a request.
type admitResult int

const (
	admitted  admitResult = iota // slot taken; caller must release()
	admitShed                    // shed: queue wait would exceed the bound, or draining
	admitGone                    // client's context ended while queued
)

// acquire admits a request, queueing (counted in queue depth and wait
// time) while the semaphore is full. The queue wait is bounded by
// admissionWait and by the request's own deadline, whichever is sooner;
// a request that cannot be admitted in time is shed immediately — a fast
// 503 the client can retry, instead of a slot-less wait that would end in
// a timeout anyway.
func (s *Server) acquire(ctx context.Context) admitResult {
	if s.draining.Load() {
		s.shed.Add(1)
		s.shedDrain.Add(1)
		return admitShed
	}
	select {
	case s.inFlight <- struct{}{}:
		if !s.admit() {
			<-s.inFlight
			s.shed.Add(1)
			s.shedDrain.Add(1)
			return admitShed
		}
		return admitted
	default:
	}
	s.queuedTotal.Add(1)
	s.queueDepth.Add(1)
	start := time.Now()
	defer func() {
		s.queueDepth.Add(-1)
		s.queueWaitNS.Add(time.Since(start).Nanoseconds())
	}()

	// The effective wait bound: admissionWait, capped by the time left on
	// the request's own deadline (waiting longer than the client will wait
	// is pure waste).
	wait := s.admissionWait
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); wait <= 0 || rem < wait {
			wait = rem
		}
	}
	var timeoutC <-chan time.Time
	if wait > 0 {
		t := time.NewTimer(wait)
		defer t.Stop()
		timeoutC = t.C
	} else if wait < 0 {
		// Deadline already passed; shed without waiting.
		s.shed.Add(1)
		s.shedDeadline.Add(1)
		return admitShed
	}
	select {
	case s.inFlight <- struct{}{}:
		if !s.admit() {
			// Shutdown raced our admission; hand the slot back.
			<-s.inFlight
			s.shed.Add(1)
			s.shedDrain.Add(1)
			return admitShed
		}
		return admitted
	case <-timeoutC:
		s.shed.Add(1)
		s.shedWait.Add(1)
		return admitShed
	case <-ctx.Done():
		return admitGone
	}
}

// admit registers the caller (who holds an inFlight slot) as an active
// request, unless the server is draining. The read lock orders the
// registration against Shutdown's drain flip.
func (s *Server) admit() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining.Load() {
		return false
	}
	s.active.Add(1)
	return true
}

func (s *Server) release() {
	<-s.inFlight
	s.active.Done()
}

// shedResponse answers a request refused by admission: 503 plus a
// Retry-After hint sized to the admission wait bound, so well-behaved
// clients back off instead of hammering a saturated (or draining) server.
func (s *Server) shedResponse(w http.ResponseWriter) {
	retry := int(s.admissionWait / time.Second)
	if retry < 1 {
		retry = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(retry))
	msg := "server overloaded; retry later"
	if s.draining.Load() {
		msg = "server shutting down"
	}
	httpError(w, http.StatusServiceUnavailable, msg)
}

// Install registers a strategy under its name, replacing any previous
// one.
func (s *Server) Install(st *strategy.Strategy) error {
	if err := st.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.strategies[st.Name] = st
	return nil
}

// StrategyNames returns the installed strategy names, sorted.
func (s *Server) StrategyNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.strategies))
	for n := range s.strategies {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Handler returns the HTTP handler. Every route runs under the panic
// recovery middleware: a handler panic answers 500, bumps the recovered
// counter, and the process keeps serving.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /search", s.handleSearch)
	mux.HandleFunc("GET /strategies", s.handleListStrategies)
	mux.HandleFunc("POST /strategies", s.handleInstallStrategy)
	mux.HandleFunc("POST /append", s.handleAppend)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return s.withRecovery(mux)
}

// handleHealthz is liveness: 200 whenever the process can run a handler
// at all. It deliberately ignores drain and overload — a draining server
// is alive, and restarting it would lose the in-flight work.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

// handleReadyz is readiness: 200 only when the server wants traffic.
// Not-ready during warm-up (before SetReady(true)) and during drain, so
// load balancers stop routing here before the 503s start.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.Ready() {
		reason := "warming up"
		if s.draining.Load() {
			reason = "draining"
		}
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "unavailable", "reason": reason})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
}

// withRecovery is the outermost degradation layer: any panic that escapes
// a handler — including engine plumbing outside Exec's own containment —
// is recovered here, counted, and answered as a 500 instead of tearing
// down the connection (net/http's default) or trusting every code path
// below to be panic-free. The response is best-effort: if the handler
// already wrote a partial body, the write of the error payload fails
// silently, but the process always survives.
func (s *Server) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.handlerPanics.Add(1)
				pe := fault.Capture(r.Method+" "+r.URL.Path, rec)
				httpError(w, http.StatusInternalServerError, pe.Error())
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// SearchResult is one ranked hit in a search response.
type SearchResult struct {
	Subject string  `json:"subject"`
	Score   float64 `json:"score"`
}

// SearchResponse is the /search payload.
type SearchResponse struct {
	Strategy  string         `json:"strategy"`
	Query     string         `json:"query"`
	K         int            `json:"k"`
	Results   []SearchResult `json:"results"`
	LatencyMS float64        `json:"latency_ms"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("strategy")
	query := r.URL.Query().Get("q")
	if name == "" || query == "" {
		httpError(w, http.StatusBadRequest, "parameters 'strategy' and 'q' are required")
		return
	}
	k := 10
	if ks := r.URL.Query().Get("k"); ks != "" {
		v, err := strconv.Atoi(ks)
		if err != nil || v < 1 || v > 1000 {
			httpError(w, http.StatusBadRequest, "k must be an integer in [1,1000]")
			return
		}
		k = v
	}
	s.mu.RLock()
	st, ok := s.strategies[name]
	s.mu.RUnlock()
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("no strategy %q (installed: %v)", name, s.StrategyNames()))
		return
	}

	// Fault-injection site: tests arm it to panic inside the handler and
	// prove the recovery middleware keeps the process serving.
	if err := faultpoint.Inject(faultpoint.SiteServerSearch); err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}

	start := time.Now()
	switch s.acquire(r.Context()) {
	case admitShed:
		s.shedResponse(w)
		return
	case admitGone:
		// Client went away while queued; nothing useful to send.
		httpError(w, http.StatusServiceUnavailable, "request cancelled while queued")
		return
	}
	defer s.release()
	plan, err := st.CompileOptimized(&strategy.Compiler{Query: query, Synonyms: s.synonyms}, s.ctx)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	// Execute under the request's context: when the client disconnects the
	// engine aborts the plan at its next chunk boundary and the admission
	// slot frees immediately, instead of a dead request holding it until
	// plan completion. The optional server deadline stacks on top, and on
	// a memory-governed server the request's reservation rides the same
	// context — released on this handler's exit however the request ends.
	c := r.Context()
	if s.timeout > 0 {
		var cancel context.CancelFunc
		c, cancel = context.WithTimeout(c, s.timeout)
		defer cancel()
	}
	if s.memPool != nil {
		res := s.memPool.Reserve(s.perQueryBytes)
		defer res.Release()
		c = memory.WithReservation(c, res)
	}
	rel, err := s.ctx.Exec(c, engine.NewTopN(plan, k,
		engine.SortSpec{Col: "", Desc: true}, engine.SortSpec{Col: triple.ColSubject}))
	if err != nil {
		switch {
		case errors.Is(err, engine.ErrBudgetExceeded):
			// Terminal for this query: retrying the same query against the
			// same budget fails identically, so the status must not be one
			// clients retry on. 507 names the cause exactly.
			s.budgetDenied.Add(1)
			httpError(w, http.StatusInsufficientStorage, err.Error())
		case errors.Is(err, context.DeadlineExceeded):
			s.timedOut.Add(1)
			httpError(w, http.StatusGatewayTimeout, fmt.Sprintf("query exceeded the %s server deadline", s.timeout))
		case errors.Is(err, context.Canceled):
			s.cancelled.Add(1)
			httpError(w, http.StatusServiceUnavailable, "request cancelled")
		default:
			httpError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	elapsed := time.Since(start)

	cv, _ := s.requests.LoadOrStore(name, &counter{})
	cc := cv.(*counter)
	cc.mu.Lock()
	cc.n++
	cc.totalNS += elapsed.Nanoseconds()
	cc.mu.Unlock()

	resp := SearchResponse{
		Strategy:  name,
		Query:     query,
		K:         k,
		Results:   make([]SearchResult, rel.NumRows()),
		LatencyMS: float64(elapsed.Microseconds()) / 1000,
	}
	prob := rel.Prob()
	for i := range resp.Results {
		resp.Results[i] = SearchResult{Subject: rel.Col(0).Vec.Format(i), Score: prob[i]}
	}
	if r.URL.Query().Get("stream") == "1" {
		s.writeStreamed(w, r, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// streamFrameRows is the number of results encoded per rows frame.
const streamFrameRows = 256

// Frame types of the streamed /search response (one JSON object per
// line, application/x-ndjson): a schema frame, zero or more rows
// frames, and exactly one trailing end or error frame. A response that
// ends without its trailing frame was truncated — clients must treat it
// as failed, never as a short result.
type schemaFrame struct {
	Frame    string   `json:"frame"` // "schema"
	Strategy string   `json:"strategy"`
	Query    string   `json:"query"`
	K        int      `json:"k"`
	Columns  []string `json:"columns"`
}

type rowsFrame struct {
	Frame   string         `json:"frame"` // "rows"
	Results []SearchResult `json:"results"`
}

type endFrame struct {
	Frame     string  `json:"frame"` // "end"
	Rows      int     `json:"rows"`
	LatencyMS float64 `json:"latency_ms"`
}

type errorFrame struct {
	Frame string `json:"frame"` // "error"
	Error string `json:"error"`
}

// writeStreamed encodes an already-computed response as ndjson frames,
// flushing after every frame so results reach a slow reader
// incrementally and a disconnect is noticed at the next frame boundary
// — at which point the handler returns and its deferred releases free
// the admission slot and memory reservation immediately.
func (s *Server) writeStreamed(w http.ResponseWriter, r *http.Request, resp SearchResponse) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(frame any) bool {
		if err := r.Context().Err(); err != nil {
			// Cancelled mid-stream. Best-effort error frame: if this was a
			// server deadline the client may still be reading and deserves a
			// terminal frame; if the client disconnected the write just
			// fails. Either way the stream ends without its end frame.
			s.cancelled.Add(1)
			_ = enc.Encode(errorFrame{Frame: "error", Error: err.Error()})
			return false
		}
		if err := enc.Encode(frame); err != nil {
			// The connection is gone; there is nobody to tell.
			s.cancelled.Add(1)
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	if !emit(schemaFrame{Frame: "schema", Strategy: resp.Strategy, Query: resp.Query, K: resp.K,
		Columns: []string{"subject", "score"}}) {
		return
	}
	for lo := 0; lo < len(resp.Results); lo += streamFrameRows {
		hi := lo + streamFrameRows
		if hi > len(resp.Results) {
			hi = len(resp.Results)
		}
		if !emit(rowsFrame{Frame: "rows", Results: resp.Results[lo:hi]}) {
			return
		}
	}
	emit(endFrame{Frame: "end", Rows: len(resp.Results), LatencyMS: resp.LatencyMS})
}

func (s *Server) handleListStrategies(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	type entry struct {
		Name   string `json:"name"`
		Blocks int    `json:"blocks"`
	}
	out := make([]entry, 0, len(s.strategies))
	for _, st := range s.strategies {
		out = append(out, entry{Name: st.Name, Blocks: st.NumBlocks()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleInstallStrategy(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	st, err := strategy.FromJSON(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Strategy installation shares the admission semaphore with /search:
	// installation validates and can pre-compile heavy materializations, so
	// letting it bypass admission would oversubscribe the worker pool
	// exactly when the server is saturated. The slot is taken only after
	// the body is read and parsed — a slow or malformed upload must not
	// occupy admission while doing no engine work. /stats stays exempt —
	// it must answer while the pool is busy, that is its job.
	switch s.acquire(r.Context()) {
	case admitShed:
		s.shedResponse(w)
		return
	case admitGone:
		httpError(w, http.StatusServiceUnavailable, "request cancelled while queued")
		return
	}
	defer s.release()
	if err := s.Install(st); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"installed": st.Name})
}

// appendTriple is the wire form of one triple (or delete key). Object
// may be a JSON string or number; numbers without a fractional part
// become integer objects, matching the TSV loader's type detection.
type appendTriple struct {
	Subject  string  `json:"subject"`
	Property string  `json:"property"`
	Object   any     `json:"object"`
	P        float64 `json:"p"`
}

// appendDoc is the wire form of one corpus document.
type appendDoc struct {
	ID   string  `json:"id"`
	Text string  `json:"text"`
	P    float64 `json:"p"`
}

func (t appendTriple) convert(i int) (triple.Triple, error) {
	out := triple.Triple{Subject: t.Subject, Property: t.Property, P: t.P}
	switch x := t.Object.(type) {
	case string:
		out.Obj = triple.String(x)
	case json.Number:
		if v, err := strconv.ParseInt(x.String(), 10, 64); err == nil {
			out.Obj = triple.Int(v)
		} else if f, err := x.Float64(); err == nil {
			out.Obj = triple.Float(f)
		} else {
			return out, fmt.Errorf("triple %d: bad numeric object %q", i, x.String())
		}
	default:
		return out, fmt.Errorf("triple %d: object must be a string or number, got %T", i, t.Object)
	}
	return out, nil
}

// handleAppend is live ingest over HTTP: the batch is WAL-logged (and
// fsynced per the server's policy) before it is applied, so a 200 means
// the rows are durable. Deletes apply after appends within one request.
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	if s.ingestMgr == nil {
		httpError(w, http.StatusNotImplemented, "live ingest is not enabled on this server")
		return
	}
	var req struct {
		Triples []appendTriple `json:"triples"`
		Deletes []appendTriple `json:"deletes"`
		Docs    []appendDoc    `json:"docs"`
	}
	// Read the whole payload off the network BEFORE decoding (and long
	// before the admission slot or the ingest manager's lock): a slow
	// writer trickling a large batch must stall here, in its own
	// connection's read, not inside any section other requests contend
	// on. Decoding then runs at memory speed.
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.UseNumber()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	convert := func(ts []appendTriple) ([]triple.Triple, error) {
		out := make([]triple.Triple, len(ts))
		for i, t := range ts {
			var err error
			if out[i], err = t.convert(i); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	appends, err := convert(req.Triples)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	deletes, err := convert(req.Deletes)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Mutations share the admission semaphore with /search: publishing a
	// delta does engine-adjacent work (relation builds, cache eviction),
	// so it must not bypass the load bound. The slot is taken only after
	// the body is parsed.
	switch s.acquire(r.Context()) {
	case admitShed:
		s.shedResponse(w)
		return
	case admitGone:
		httpError(w, http.StatusServiceUnavailable, "request cancelled while queued")
		return
	}
	defer s.release()
	appended, err := s.ingestMgr.AppendTriples(appends)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	deleted, err := s.ingestMgr.DeleteTriples(deletes)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	docs := make([]ingest.Doc, len(req.Docs))
	for i, d := range req.Docs {
		docs[i] = ingest.Doc{ID: d.ID, Text: d.Text, P: d.P}
	}
	appendedDocs, err := s.ingestMgr.AppendDocs(docs)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"appended_triples": appended,
		"deleted_triples":  deleted,
		"appended_docs":    appendedDocs,
		"watermark":        s.ingestMgr.Stats().Watermark,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	cacheStats := s.ctx.Cat.Cache().Stats()
	type stratStats struct {
		Requests int64   `json:"requests"`
		AvgMS    float64 `json:"avg_ms"`
	}
	perStrategy := map[string]stratStats{}
	s.requests.Range(func(k, v any) bool {
		cc := v.(*counter)
		cc.mu.Lock()
		st := stratStats{Requests: cc.n}
		if cc.n > 0 {
			st.AvgMS = float64(cc.totalNS) / float64(cc.n) / 1e6
		}
		cc.mu.Unlock()
		perStrategy[k.(string)] = st
		return true
	})
	parallelism := s.ctx.Parallelism
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	var walStats, ingestStats any
	if s.ingestMgr != nil {
		ingestStats = s.ingestMgr.Stats()
		if ws, ok := s.ingestMgr.WALStats(); ok {
			walStats = ws
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"tables":     s.ctx.Cat.TableNames(),
		"cache":      cacheStats,
		"dicts":      s.ctx.Cat.DictStats(),
		"strategies": perStrategy,
		"wal":        walStats,
		"ingest":     ingestStats,
		"executor": map[string]any{
			"parallelism": parallelism,
			"node_execs":  s.ctx.NodeExecs(),
			"cache_hits":  s.ctx.CacheHits(),
		},
		"optimizer": s.ctx.OptimizerStats(),
		"admission": map[string]any{
			"max_in_flight":     cap(s.inFlight),
			"in_flight":         len(s.inFlight),
			"queue_depth":       s.queueDepth.Load(),
			"queued_total":      s.queuedTotal.Load(),
			"queue_wait_ms":     s.queueWaitNS.Load() / 1e6,
			"admission_wait_ms": s.admissionWait.Milliseconds(),
			"timeout_ms":        s.timeout.Milliseconds(),
			"cancelled":         s.cancelled.Load(),
			"timed_out":         s.timedOut.Load(),
			"draining":          s.draining.Load(),
			"ready":             s.Ready(),
		},
		"memory": map[string]any{
			"enabled":             s.memPool != nil,
			"pool_capacity":       s.memPool.Capacity(),
			"pool_used":           s.memPool.Used(),
			"pool_peak":           s.memPool.Peak(),
			"per_query_bytes":     s.perQueryBytes,
			"active_reservations": s.memPool.Active(),
			"budget_denied":       s.budgetDenied.Load(),
		},
		// The degradation ledger: every contained failure is counted here,
		// so "the process survived" is observable, not anecdotal.
		"faults": map[string]any{
			"recovered_panics":       s.handlerPanics.Load() + s.ctx.RecoveredPanics(),
			"handler_panics":         s.handlerPanics.Load(),
			"query_panics":           s.ctx.RecoveredPanics(),
			"cache_compute_panics":   cacheStats.Panics,
			"corrupt_snapshot_loads": s.ctx.Cat.SnapshotStats().CorruptLoads,
			"shed_requests":          s.shed.Load(),
			"shed_drain":             s.shedDrain.Load(),
			"shed_wait":              s.shedWait.Load(),
			"shed_deadline":          s.shedDeadline.Load(),
			"budget_denied":          s.budgetDenied.Load(),
		},
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
