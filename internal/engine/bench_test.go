package engine

import (
	"fmt"
	"testing"

	"irdb/internal/catalog"
	"irdb/internal/expr"
	"irdb/internal/relation"
	"irdb/internal/vector"
)

// benchRelation builds an n-row (k string, v int64) relation with nKeys
// distinct keys.
func benchRelation(n, nKeys int) *relation.Relation {
	keys := make([]string, n)
	vals := make([]int64, n)
	for i := 0; i < n; i++ {
		keys[i] = fmt.Sprintf("k%06d", i%nKeys)
		vals[i] = int64(i)
	}
	return relation.MustFromColumns([]relation.Column{
		{Name: "k", Vec: vector.FromStrings(keys)},
		{Name: "v", Vec: vector.FromInt64s(vals)},
	}, nil)
}

func benchCtx(n, nKeys int) *Ctx {
	cat := catalog.New(0)
	cat.Put("t", benchRelation(n, nKeys))
	cat.Put("dict", benchRelation(nKeys, nKeys))
	return NewCtx(cat)
}

func BenchmarkSelect(b *testing.B) {
	ctx := benchCtx(100000, 1000)
	plan := NewSelect(NewScan("t"),
		expr.Cmp{Op: expr.Eq, L: expr.Column("k"), R: expr.Str("k000007")})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.Exec(plan); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashJoinManyToOne(b *testing.B) {
	ctx := benchCtx(100000, 1000)
	plan := NewHashJoin(NewScan("t"), NewScan("dict"),
		[]string{"k"}, []string{"k"}, JoinLeft)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.Exec(plan); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashJoinCachedIndex(b *testing.B) {
	ctx := benchCtx(100000, 1000)
	plan := NewHashJoin(NewScan("t"), NewMaterialize(NewScan("dict")),
		[]string{"k"}, []string{"k"}, JoinLeft)
	if _, err := ctx.Exec(plan); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.Exec(plan); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAggregateHighCardinality(b *testing.B) {
	ctx := benchCtx(100000, 50000)
	plan := NewAggregate(NewScan("t"), []string{"k"},
		[]AggSpec{{Op: CountAll, As: "n"}, {Op: Sum, Col: "v", As: "s"}}, GroupCertain)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.Exec(plan); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAggregateLowCardinality(b *testing.B) {
	ctx := benchCtx(100000, 16)
	plan := NewAggregate(NewScan("t"), []string{"k"},
		[]AggSpec{{Op: CountAll, As: "n"}}, GroupIndependent)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.Exec(plan); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopN(b *testing.B) {
	ctx := benchCtx(100000, 100000)
	plan := NewTopN(NewScan("t"), 10, SortSpec{Col: "v", Desc: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.Exec(plan); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNormalizeGrouped(b *testing.B) {
	ctx := benchCtx(100000, 1000)
	plan := NewNormalize(NewScan("t"), []int{0}, NormSum)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.Exec(plan); err != nil {
			b.Fatal(err)
		}
	}
}
