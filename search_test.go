package irdb

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// TestSearchDocsConcurrent hammers SearchDocs from many goroutines while
// LoadDocs swaps the collection underneath them. The cached searcher must
// never be observed half-built (run with -race), every call must return a
// well-formed result for whichever collection it saw, and after the last
// reload a search must reflect the final collection.
func TestSearchDocsConcurrent(t *testing.T) {
	db := openT(t, WithParallelism(2))
	t.Cleanup(func() { db.Close() })

	docsV1 := []Doc{
		{ID: "d1", Text: "wooden train set"},
		{ID: "d2", Text: "steel rails and sleepers"},
		{ID: "d3", Text: "a toy train for children"},
	}
	docsV2 := []Doc{
		{ID: "e1", Text: "venetian glass beads"},
		{ID: "e2", Text: "a history of venice"},
	}
	if err := db.LoadDocs(docsV1); err != nil {
		t.Fatal(err)
	}

	const searchers = 8
	const perSearcher = 25
	var wg sync.WaitGroup
	errs := make(chan error, searchers*perSearcher+2)
	for g := 0; g < searchers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			queries := []string{"train", "venice", "wooden", "history"}
			for i := 0; i < perSearcher; i++ {
				q := queries[(g+i)%len(queries)]
				hits, err := db.SearchDocs(context.Background(), q, 5)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d SearchDocs(%q): %w", g, q, err)
					return
				}
				for _, h := range hits {
					if h.ID == "" || h.Score <= 0 {
						errs <- fmt.Errorf("goroutine %d: malformed hit %+v for %q", g, h, q)
						return
					}
				}
			}
		}(g)
	}
	// Two reloads race with the searches; each must invalidate the cached
	// searcher rather than leaving it serving the dropped collection.
	for _, docs := range [][]Doc{docsV2, docsV1} {
		wg.Add(1)
		go func(docs []Doc) {
			defer wg.Done()
			if err := db.LoadDocs(docs); err != nil {
				errs <- fmt.Errorf("concurrent LoadDocs: %w", err)
			}
		}(docs)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Serialize a final reload, then prove the searcher was invalidated:
	// results must come from docsV2 only.
	if err := db.LoadDocs(docsV2); err != nil {
		t.Fatal(err)
	}
	hits, err := db.SearchDocs(context.Background(), "venice", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].ID != "e2" {
		t.Fatalf("post-reload SearchDocs = %+v, want the docsV2 hit e2", hits)
	}
	if _, err := db.SearchDocs(context.Background(), "train", 5); err != nil {
		t.Fatal(err)
	}
}

// TestSearchDocsCachesSearcher: the second search must reuse the searcher
// built by the first (construction walks the whole collection), and a
// LoadDocs in between must rebuild it.
func TestSearchDocsCachesSearcher(t *testing.T) {
	db := openT(t, WithParallelism(1))
	t.Cleanup(func() { db.Close() })
	if err := db.LoadDocs([]Doc{{ID: "d1", Text: "wooden train"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.SearchDocs(context.Background(), "train", 5); err != nil {
		t.Fatal(err)
	}
	first := db.searcher.Load()
	if first == nil {
		t.Fatal("searcher not cached after first SearchDocs")
	}
	if _, err := db.SearchDocs(context.Background(), "wooden", 5); err != nil {
		t.Fatal(err)
	}
	if db.searcher.Load() != first {
		t.Fatal("second SearchDocs rebuilt the cached searcher")
	}
	if err := db.LoadDocs([]Doc{{ID: "d2", Text: "steel rails"}}); err != nil {
		t.Fatal(err)
	}
	if db.searcher.Load() != nil {
		t.Fatal("LoadDocs must invalidate the cached searcher")
	}
	hits, err := db.SearchDocs(context.Background(), "rails", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].ID != "d2" {
		t.Fatalf("post-reload hits = %+v, want d2", hits)
	}
}
