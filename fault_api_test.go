package irdb

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestSnapshotFacadeRoundTrip: SaveSnapshot/LoadSnapshot carry the whole
// triple store (dict encoding included) across DB instances, and a
// corrupted file is refused with ErrCorruptSnapshot, leaving the loading
// DB untouched and the incident counted in Stats.
func TestSnapshotFacadeRoundTrip(t *testing.T) {
	ctx := context.Background()
	src := openTestDB(t, 0)
	path := filepath.Join(t.TempDir(), "db.snap")
	if err := src.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	if st := src.Stats(); st.Faults.SnapshotSaves != 1 {
		t.Errorf("SnapshotSaves = %d, want 1", st.Faults.SnapshotSaves)
	}

	const q = `SELECT [$2 = "type" and $3 = "lot"] (triples);`
	want, err := src.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}

	dst := openT(t)
	t.Cleanup(func() { dst.Close() })
	if err := dst.LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	got, err := dst.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != want.NumRows() {
		t.Fatalf("rows after snapshot load = %d, want %d", got.NumRows(), want.NumRows())
	}

	// Corrupt the file mid-payload; loading must fail typed and mutate
	// nothing.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	broken := openT(t)
	t.Cleanup(func() { broken.Close() })
	before := len(broken.Stats().Tables)
	err = broken.LoadSnapshot(path)
	if !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("err = %v, want ErrCorruptSnapshot", err)
	}
	if after := len(broken.Stats().Tables); after != before {
		t.Errorf("corrupt load mutated tables: %d -> %d", before, after)
	}
	if st := broken.Stats(); st.Faults.CorruptSnapshotLoads != 1 {
		t.Errorf("CorruptSnapshotLoads = %d, want 1", st.Faults.CorruptSnapshotLoads)
	}
}

// TestAdmissionWaitOverloaded: with the single slot held, a bounded
// admission wait fails fast with ErrOverloaded (counted in Stats), and
// the query succeeds once the slot frees.
func TestAdmissionWaitOverloaded(t *testing.T) {
	ctx := context.Background()
	db := openT(t, WithMaxInFlight(1), WithAdmissionWait(5*time.Millisecond))
	t.Cleanup(func() { db.Close() })
	if err := db.LoadTriples(testGraph(50)); err != nil {
		t.Fatal(err)
	}
	const q = `SELECT [$2 = "type"] (triples);`

	db.inFlight <- struct{}{} // occupy the only slot
	_, err := db.Query(ctx, q)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if st := db.Stats(); st.Faults.Overloaded != 1 {
		t.Errorf("Overloaded = %d, want 1", st.Faults.Overloaded)
	}

	<-db.inFlight
	if _, err := db.Query(ctx, q); err != nil {
		t.Fatalf("query after slot freed: %v", err)
	}
}

// TestCloseDrainsInFlight: Close blocks until running queries finish,
// then every later operation reports ErrClosed.
func TestCloseDrainsInFlight(t *testing.T) {
	db := openT(t)
	end, err := db.begin()
	if err != nil {
		t.Fatal(err)
	}
	closed := make(chan error, 1)
	go func() { closed <- db.Close() }()

	select {
	case err := <-closed:
		t.Fatalf("Close returned %v with a query still in flight", err)
	case <-time.After(20 * time.Millisecond):
	}
	end()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("Close = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not return after the in-flight query ended")
	}
	if _, err := db.Query(context.Background(), "x"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Query on closed DB = %v, want ErrClosed", err)
	}
}
