package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"testing"

	"irdb/internal/strategy"
	"irdb/internal/workload"
)

// TestConcurrentTraffic hammers one shared server — and therefore one
// shared engine.Ctx and materialization cache — with parallel search,
// strategy-install, listing and stats requests. Assertions are
// deliberately light: the -race detector and the determinism check over
// repeated identical queries are the point.
func TestConcurrentTraffic(t *testing.T) {
	_, ts := newTestServer(t)
	v := workload.NewVocabulary(500, 7)

	// Reference result, fetched before the stampede begins.
	refQuery := v.Word(10) + " " + v.Word(20)
	searchURL := func(q string) string {
		return fmt.Sprintf("%s/search?strategy=auction-lots&q=%s&k=10", ts.URL, url.QueryEscape(q))
	}
	var ref SearchResponse
	if code := getJSON(t, searchURL(refQuery), &ref); code != http.StatusOK {
		t.Fatalf("reference search status = %d", code)
	}

	const clients = 8
	const iters = 25
	var wg sync.WaitGroup
	errc := make(chan error, clients*4)

	// Searchers: half repeat the reference query and must always see the
	// reference ranking; half spread over the vocabulary.
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				q := refQuery
				if c%2 == 1 {
					q = v.Word((c*31+i)%500) + " " + v.Word((c*17+i)%500)
				}
				var resp SearchResponse
				httpResp, err := http.Get(searchURL(q))
				if err != nil {
					errc <- err
					return
				}
				body, _ := io.ReadAll(httpResp.Body)
				httpResp.Body.Close()
				if httpResp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("search %q: status %d: %s", q, httpResp.StatusCode, body)
					return
				}
				if err := json.Unmarshal(body, &resp); err != nil {
					errc <- fmt.Errorf("search %q: %v", q, err)
					return
				}
				if q == refQuery {
					if len(resp.Results) != len(ref.Results) {
						errc <- fmt.Errorf("ranking drifted: %d results, want %d", len(resp.Results), len(ref.Results))
						return
					}
					for i := range resp.Results {
						if resp.Results[i] != ref.Results[i] {
							errc <- fmt.Errorf("ranking drifted at %d: %+v != %+v", i, resp.Results[i], ref.Results[i])
							return
						}
					}
				}
			}
		}(c)
	}

	// Installers: repeatedly (re-)install strategies while searches run.
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				st := strategy.Auction(0.6, 0.4)
				st.Name = fmt.Sprintf("installed-%d", c)
				body, err := json.Marshal(st)
				if err != nil {
					errc <- err
					return
				}
				resp, err := http.Post(ts.URL+"/strategies", "application/json", bytes.NewReader(body))
				if err != nil {
					errc <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusCreated {
					errc <- fmt.Errorf("install: status %d", resp.StatusCode)
					return
				}
			}
		}(c)
	}

	// Readers: stats and strategy listings.
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var stats map[string]any
				if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
					errc <- fmt.Errorf("stats: status %d", code)
					return
				}
				if _, ok := stats["executor"]; !ok {
					errc <- fmt.Errorf("stats missing executor block: %v", stats)
					return
				}
				if code := getJSON(t, ts.URL+"/strategies", nil); code != http.StatusOK {
					errc <- fmt.Errorf("strategies: status %d", code)
					return
				}
			}
		}()
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestConcurrentSearchAcrossParallelism runs the same traffic against
// servers configured serial and parallel; the rankings must agree.
func TestConcurrentSearchAcrossParallelism(t *testing.T) {
	v := workload.NewVocabulary(500, 7)
	queries := make([]string, 6)
	for i := range queries {
		queries[i] = v.Word(i*13%500) + " " + v.Word(i*29%500)
	}
	results := make([][]SearchResponse, 0, 3)
	for _, par := range []int{1, 2, 8} {
		srv, ts := newTestServerParallel(t, par)
		_ = srv
		out := make([]SearchResponse, len(queries))
		var wg sync.WaitGroup
		for i, q := range queries {
			wg.Add(1)
			go func(i int, q string) {
				defer wg.Done()
				getJSON(t, fmt.Sprintf("%s/search?strategy=auction-lots&q=%s&k=10", ts.URL, url.QueryEscape(q)), &out[i])
			}(i, q)
		}
		wg.Wait()
		results = append(results, out)
	}
	for r := 1; r < len(results); r++ {
		for i := range queries {
			a, b := results[0][i], results[r][i]
			if len(a.Results) != len(b.Results) {
				t.Fatalf("query %d: %d vs %d results across parallelism", i, len(a.Results), len(b.Results))
			}
			for j := range a.Results {
				if a.Results[j] != b.Results[j] {
					t.Errorf("query %d rank %d: %+v != %+v", i, j, a.Results[j], b.Results[j])
				}
			}
		}
	}
}
