// Fixtures for the mapiterorder analyzer: map iteration in
// result-producing code must not leak Go's randomized order.
package mapiterorder

import "sort"

func orderLeaks(m map[string]int) []string {
	out := []string{}
	for k, v := range m { // want "map iteration order is nondeterministic"
		if v > 0 {
			out = append(out, k)
		}
	}
	return out
}

// collectThenSort is the decidable deterministic shape: the body only
// appends the bindings, and the slice is sorted before use.
func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// bareRange binds nothing, so no order is observable.
func bareRange(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// annotated loops carry the reason order cannot leak.
func annotated(m map[string]int) int {
	total := 0
	//lint:allow mapiterorder pure sum; addition is commutative
	for _, v := range m {
		total += v
	}
	return total
}

// unsortedCollect appends bindings but never sorts: still order-leaking.
func unsortedCollect(m map[string]int) []string {
	keys := []string{}
	for k := range m { // want "map iteration order is nondeterministic"
		keys = append(keys, k)
	}
	return keys
}
