package catalog

import (
	"context"
	"fmt"
	"testing"

	"irdb/internal/relation"
	"irdb/internal/vector"
)

// TestByteWeightedEviction: many small hot entries must survive the
// arrival of one huge materialization — the oversize result is refused
// admission instead of flushing the cache.
func TestByteWeightedEviction(t *testing.T) {
	c := NewCache(0)
	small := rel(10) // 10 rows * (8 bytes value + 8 bytes prob) = 160 bytes
	perEntry := small.EstimatedBytes()
	c.SetMaxBytes(perEntry * 8)
	for i := 0; i < 8; i++ {
		c.Put(fmt.Sprintf("small%d", i), rel(10))
	}
	st := c.Stats()
	if st.Entries != 8 || st.Evictions != 0 {
		t.Fatalf("after smalls: entries=%d evictions=%d, want 8, 0", st.Entries, st.Evictions)
	}
	if st.Bytes != perEntry*8 {
		t.Fatalf("bytes = %d, want %d", st.Bytes, perEntry*8)
	}

	// A relation bigger than the whole budget must not be admitted.
	c.Put("huge", rel(1000))
	st = c.Stats()
	if st.Entries != 8 {
		t.Errorf("huge insert evicted smalls: entries = %d, want 8", st.Entries)
	}
	if st.Oversize != 1 {
		t.Errorf("oversize = %d, want 1", st.Oversize)
	}
	if _, ok := c.Get("huge"); ok {
		t.Error("oversize entry was cached")
	}

	// A fitting entry evicts only as many LRU bytes as it needs.
	c.Put("medium", rel(20)) // 2 small entries' worth
	st = c.Stats()
	if st.Bytes > perEntry*8 {
		t.Errorf("bytes = %d over budget %d", st.Bytes, perEntry*8)
	}
	if st.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", st.Evictions)
	}
	if _, ok := c.Get("medium"); !ok {
		t.Error("medium entry missing")
	}
	// The two oldest smalls went; the rest survive.
	for i := 2; i < 8; i++ {
		if _, ok := c.Get(fmt.Sprintf("small%d", i)); !ok {
			t.Errorf("small%d evicted, want resident", i)
		}
	}
}

// TestByteAccountingOnReplaceAndClear keeps the bytes gauge consistent
// across entry replacement and Clear.
func TestByteAccountingOnReplaceAndClear(t *testing.T) {
	c := NewCache(0)
	c.Put("k", rel(10))
	b10 := c.Stats().Bytes
	c.Put("k", rel(30))
	if got := c.Stats().Bytes; got != 3*b10 {
		t.Errorf("bytes after replace = %d, want %d", got, 3*b10)
	}
	c.Clear()
	if got := c.Stats().Bytes; got != 0 {
		t.Errorf("bytes after clear = %d, want 0", got)
	}
}

// sizedAux is a fake join index reporting a fixed footprint.
type sizedAux struct{ bytes int64 }

func (s sizedAux) EstimatedBytes() int64 { return s.bytes }

// TestAuxEntriesCountTowardByteBudget: auxiliary entries implementing
// Sized are weighed into the shared byte budget, evict LRU entries when
// they arrive, are themselves evictable, and show up separately in Stats.
func TestAuxEntriesCountTowardByteBudget(t *testing.T) {
	c := NewCache(0)
	per := rel(10).EstimatedBytes()
	c.SetMaxBytes(per * 4)
	for i := 0; i < 4; i++ {
		c.Put(fmt.Sprintf("rel%d", i), rel(10))
	}

	// An aux entry worth two relations must evict the two LRU relations.
	c.PutAux("idx", sizedAux{bytes: per * 2})
	st := c.Stats()
	if st.Entries != 2 || st.AuxEntries != 1 {
		t.Fatalf("entries=%d aux=%d, want 2, 1", st.Entries, st.AuxEntries)
	}
	if st.AuxBytes != per*2 {
		t.Errorf("aux bytes = %d, want %d", st.AuxBytes, per*2)
	}
	if st.Bytes+st.AuxBytes > per*4 {
		t.Errorf("total bytes %d over budget %d", st.Bytes+st.AuxBytes, per*4)
	}
	for _, k := range []string{"rel0", "rel1"} {
		if _, ok := c.Get(k); ok {
			t.Errorf("%s still resident, want evicted (LRU)", k)
		}
	}

	// Relations arriving later evict the now-LRU aux entry in turn.
	for i := 0; i < 4; i++ {
		c.Put(fmt.Sprintf("new%d", i), rel(10))
	}
	if _, ok := c.GetAux("idx"); ok {
		t.Error("aux entry survived a full budget of newer relations")
	}
	if st := c.Stats(); st.AuxBytes != 0 || st.AuxEntries != 0 {
		t.Errorf("aux accounting after eviction: entries=%d bytes=%d, want 0, 0", st.AuxEntries, st.AuxBytes)
	}

	// An aux entry bigger than the whole budget is refused admission.
	before := c.Stats().Oversize
	c.PutAux("huge", sizedAux{bytes: per * 100})
	if _, ok := c.GetAux("huge"); ok {
		t.Error("oversize aux entry was cached")
	}
	if got := c.Stats().Oversize; got != before+1 {
		t.Errorf("oversize = %d, want %d", got, before+1)
	}

	// Unweighable aux values (no EstimatedBytes) stay admissible at zero
	// weight — the pre-Sized behaviour.
	c.PutAux("opaque", 42)
	if v, ok := c.GetAux("opaque"); !ok || v != 42 {
		t.Error("unweighable aux entry not stored")
	}
	if st := c.Stats(); st.AuxBytes != 0 {
		t.Errorf("unweighable aux entry contributed %d bytes", st.AuxBytes)
	}
}

// TestCapacityEvictionSkipsAuxEntries: entry-count pressure must evict
// only relation entries — aux entries do not count toward capacity, so a
// count-capped cache with relation churn must not collaterally flush its
// join indexes.
func TestCapacityEvictionSkipsAuxEntries(t *testing.T) {
	c := NewCache(2)
	c.PutAux("idx", sizedAux{bytes: 1000})
	for i := 0; i < 6; i++ {
		c.Put(fmt.Sprintf("rel%d", i), rel(10))
	}
	st := c.Stats()
	if st.Entries != 2 {
		t.Errorf("entries = %d, want 2 (capacity)", st.Entries)
	}
	if _, ok := c.GetAux("idx"); !ok {
		t.Error("aux entry evicted by capacity pressure, want resident")
	}
	if st.AuxEntries != 1 {
		t.Errorf("aux entries = %d, want 1", st.AuxEntries)
	}
	// Byte pressure, by contrast, still evicts the (now cold) aux entry.
	c.SetMaxBytes(rel(10).EstimatedBytes() * 2)
	if _, ok := c.GetAux("idx"); ok {
		t.Error("aux entry survived byte pressure it no longer fits under")
	}
}

// TestAuxBytesAccountingOnReplaceDropClear keeps the aux bytes gauge
// consistent across replacement, DropAux and Clear.
func TestAuxBytesAccountingOnReplaceDropClear(t *testing.T) {
	c := NewCache(0)
	c.PutAux("a", sizedAux{bytes: 100})
	c.PutAux("a", sizedAux{bytes: 300})
	if got := c.Stats().AuxBytes; got != 300 {
		t.Errorf("aux bytes after replace = %d, want 300", got)
	}
	c.PutAux("b", sizedAux{bytes: 50})
	c.DropAux("a")
	if got := c.Stats().AuxBytes; got != 50 {
		t.Errorf("aux bytes after drop = %d, want 50", got)
	}
	c.Clear()
	st := c.Stats()
	if st.AuxBytes != 0 || st.AuxEntries != 0 {
		t.Errorf("after clear: aux entries=%d bytes=%d, want 0, 0", st.AuxEntries, st.AuxBytes)
	}
}

// TestSetMaxBytesShrinkEvicts: lowering the budget evicts immediately.
func TestSetMaxBytesShrinkEvicts(t *testing.T) {
	c := NewCache(0)
	for i := 0; i < 4; i++ {
		c.Put(fmt.Sprintf("k%d", i), rel(10))
	}
	per := rel(10).EstimatedBytes()
	c.SetMaxBytes(2 * per)
	st := c.Stats()
	if st.Entries != 2 || st.Bytes != 2*per {
		t.Errorf("after shrink: entries=%d bytes=%d, want 2, %d", st.Entries, st.Bytes, 2*per)
	}
	// MRU entries are the survivors.
	for _, k := range []string{"k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s evicted, want resident", k)
		}
	}

	// Shrinking below a single resident entry must evict it too: nothing
	// protects the last entry during a budget change.
	c.SetMaxBytes(per / 2)
	st = c.Stats()
	if st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("after shrink below one entry: entries=%d bytes=%d, want 0, 0", st.Entries, st.Bytes)
	}
}

// TestCacheWeighsBaseDictsAsMarginal checks that a cached relation
// sharing a base table's frozen dict is weighed by its marginal bytes
// (codes, probs), not the dictionary: evicting it would not free the
// dict, and charging it would make every derived entry look oversize
// under a byte budget. A dict NOT pinned by any base table (e.g. a
// per-evaluation tokenizer dict) must still count in full.
func TestCacheWeighsBaseDictsAsMarginal(t *testing.T) {
	big := make([]string, 0, 2000)
	for i := 0; i < 2000; i++ {
		big = append(big, fmt.Sprintf("subject-with-a-long-name-%06d", i))
	}
	base, err := relation.EncodeStringCols(relation.MustFromColumns([]relation.Column{
		{Name: "s", Vec: vector.FromStrings(big)},
	}, nil), "s")
	if err != nil {
		t.Fatal(err)
	}
	cat := New(0)
	cat.Put("base", base)
	dictBytes := base.Col(0).Vec.(*vector.DictStrings).Dict().EstimatedBytes()

	// A tiny slice of the base table: marginal weight ≈ 10 codes + probs.
	derived := base.Gather([]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	if _, _, err := cat.Cache().GetOrCompute(context.Background(), "tiny", func(context.Context) (*relation.Relation, error) {
		return derived, nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := cat.Cache().Stats().Bytes; got >= dictBytes {
		t.Fatalf("cached slice weighs %d bytes, should be marginal (dict alone is %d)", got, dictBytes)
	}

	// An unpinned dict reachable only through the cached entry counts full.
	fresh := relation.MustFromColumns([]relation.Column{
		{Name: "s", Vec: vector.EncodeStrings(vector.FromStrings(big[:500]))},
	}, nil)
	before := cat.Cache().Stats().Bytes
	if _, _, err := cat.Cache().GetOrCompute(context.Background(), "fresh", func(context.Context) (*relation.Relation, error) {
		return fresh, nil
	}); err != nil {
		t.Fatal(err)
	}
	freshDict := fresh.Col(0).Vec.(*vector.DictStrings).Dict().EstimatedBytes()
	if got := cat.Cache().Stats().Bytes - before; got < freshDict {
		t.Fatalf("unpinned dict weighed %d bytes, want at least its dict (%d)", got, freshDict)
	}
}
