// Fixtures for the ctxhygiene analyzer: no fresh context roots in
// execution code, and exported entry points take ctx first.
package ctxhygiene

import "context"

func Exec(ctx context.Context, q string) error { return ctx.Err() }

func MisplacedCtx(q string, ctx context.Context) error { return ctx.Err() } // want "MisplacedCtx: context.Context must be the first parameter"

func freshRoots() {
	_ = context.Background() // want `context.Background\(\) detaches this work`
	_ = context.TODO()       // want `context.TODO\(\) detaches this work`
}

// detached work sheds cancellation but keeps values: the sanctioned form.
func detach(ctx context.Context) context.Context {
	return context.WithoutCancel(ctx)
}

// unexported functions may order parameters freely.
func helper(q string, ctx context.Context) error { return ctx.Err() }
