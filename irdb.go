package irdb

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"irdb/internal/catalog"
	"irdb/internal/engine"
	"irdb/internal/ingest"
	"irdb/internal/ir"
	"irdb/internal/memory"
	"irdb/internal/relation"
	"irdb/internal/spinql"
	"irdb/internal/strategy"
	"irdb/internal/text"
	"irdb/internal/triple"
	"irdb/internal/vector"
	"irdb/internal/wal"
)

// ErrClosed is returned by every operation on a closed DB.
var ErrClosed = errors.New("irdb: database is closed")

// ErrOverloaded is returned when the in-flight limit is reached and a
// query's bounded admission wait (WithAdmissionWait) expires before a
// slot frees up. It is the library-level analogue of an HTTP 503: the
// caller should back off and retry rather than keep queueing.
var ErrOverloaded = errors.New("irdb: too many in-flight queries")

// ErrCorruptSnapshot is returned by LoadSnapshot when the file fails
// checksum or structural validation. The database is left unchanged.
// Match with errors.Is; the concrete error carries the failing section
// and byte offset.
var ErrCorruptSnapshot = catalog.ErrCorruptSnapshot

// ErrCorruptWAL is returned by Open when the durability directory's
// write-ahead log holds damage a crash cannot explain (a bad frame with
// valid data after it). A torn tail — the normal crash artifact — is
// repaired silently, never reported as this.
var ErrCorruptWAL = wal.ErrCorruptWAL

// ErrNotDurable is returned by Checkpoint on a database opened without
// WithDurability.
var ErrNotDurable = ingest.ErrNotDurable

// ErrBudgetExceeded is returned by a query whose memory charges exceed
// its per-query byte budget (WithQueryMemBytes) or the shared pool
// capacity (WithMemoryPoolBytes). The failure is clean and terminal for
// that query only: nothing is cached, the reservation is fully
// released, and the same query may succeed under a larger budget or a
// quieter pool. Match with errors.Is.
var ErrBudgetExceeded = engine.ErrBudgetExceeded

// PanicError is the typed failure a query returns when an operator
// panicked during execution. The panic is contained: the process
// survives, the worker pool drains, and nothing is cached. Op names the
// operator that blew up and Stack holds its (truncated) stack trace.
type PanicError = engine.PanicError

// AsPanicError reports whether err (or anything it wraps) is a
// contained operator panic.
func AsPanicError(err error) (*PanicError, bool) { return engine.AsPanicError(err) }

// DB is the public face of the engine: a probabilistic triple store, a
// document collection, the SpinQL query language with prepared
// statements, and block-based search strategies — all sharing one
// materialization cache and one worker pool. A DB is safe for concurrent
// use; every query-running method takes a context.Context whose deadline
// and cancellation reach all the way into the engine's morsel loops, so a
// cancelled call returns promptly without waiting for plan completion.
type DB struct {
	cat      *catalog.Catalog
	store    *triple.Store
	eng      *engine.Ctx
	ingest   *ingest.Manager
	synonyms text.SynonymDict

	mu         sync.RWMutex
	strategies map[string]*strategy.Strategy

	// inFlight is the admission semaphore (nil = unbounded): queries past
	// the limit queue context-aware, so a caller that gives up while
	// queued never occupies a slot. admissionWait bounds the queueing
	// time (0 = wait as long as the context allows).
	inFlight      chan struct{}
	admissionWait time.Duration

	// memPool is the shared memory-reservation pool (nil = ungoverned);
	// queryMemBytes the per-query byte budget carved from it (0 = bounded
	// only by the pool).
	memPool       *memory.Pool
	queryMemBytes int64

	// execMu tracks in-flight query execution for Close: queries hold the
	// read side for their duration, Close takes the write side to drain.
	execMu sync.RWMutex

	parses     atomic.Int64
	compiles   atomic.Int64
	queries    atomic.Int64
	overloaded atomic.Int64
	closed     atomic.Bool

	// searcher caches the SearchDocs searcher (its construction walks the
	// collection for BM25 statistics); LoadDocs invalidates it. A racing
	// construction may store twice — both searchers are valid over the
	// same docs table, last one wins.
	searcher atomic.Pointer[ir.Searcher]
}

// Option configures Open.
type Option func(*config)

type config struct {
	parallelism   int
	cacheBytes    int64
	cacheEntries  int
	maxInFlight   int
	admissionWait time.Duration
	queryMemBytes int64
	memPoolBytes  int64
	synonyms      map[string][]string
	durDir        string
	fsyncPolicy   string
	fsyncInterval time.Duration
}

// WithParallelism bounds the engine worker pool shared by all concurrent
// queries on the DB. 0 (the default) means GOMAXPROCS; 1 forces serial
// execution. Results are bit-identical at every setting.
func WithParallelism(n int) Option { return func(c *config) { c.parallelism = n } }

// WithCacheBytes sets the byte budget of the materialization cache
// (relations plus auxiliary join indexes). <= 0 means unbounded.
func WithCacheBytes(n int64) Option { return func(c *config) { c.cacheBytes = n } }

// WithCacheEntries bounds the number of cached relation entries.
// <= 0 means unbounded.
func WithCacheEntries(n int) Option { return func(c *config) { c.cacheEntries = n } }

// WithMaxInFlight bounds concurrently executing queries; excess callers
// queue (respecting their context) instead of oversubscribing the worker
// pool. <= 0 (the default) means unbounded.
func WithMaxInFlight(n int) Option { return func(c *config) { c.maxInFlight = n } }

// WithAdmissionWait bounds how long a query may queue for an in-flight
// slot before failing fast with ErrOverloaded. Only meaningful together
// with WithMaxInFlight. <= 0 (the default) queues for as long as the
// query's context allows — graceful degradation trades a little latency
// headroom for never building an unbounded backlog.
func WithAdmissionWait(d time.Duration) Option { return func(c *config) { c.admissionWait = d } }

// WithQueryMemBytes bounds the bytes any single query may hold in
// intermediate results: joins' build tables, sort runs, aggregation
// accumulators and gathered outputs all charge against the budget, and
// a query that exceeds it fails cleanly with ErrBudgetExceeded instead
// of pressuring the process toward OOM. <= 0 (the default) leaves
// queries unbounded (though still pool-bounded under
// WithMemoryPoolBytes). Budgets never change results: a query that fits
// is bit-identical to its unbudgeted run at every parallelism.
func WithQueryMemBytes(n int64) Option { return func(c *config) { c.queryMemBytes = n } }

// WithMemoryPoolBytes caps the total bytes concurrently executing
// queries may hold between them. Each query reserves from the shared
// pool as it allocates; a charge that would push the pool past its
// capacity fails that query with ErrBudgetExceeded (pool scope) while
// the others run on. <= 0 (the default) tracks usage without a cap.
func WithMemoryPoolBytes(n int64) Option { return func(c *config) { c.memPoolBytes = n } }

// WithSynonyms supplies the synonym dictionary used by strategies with
// query expansion enabled.
func WithSynonyms(syn map[string][]string) Option { return func(c *config) { c.synonyms = syn } }

// WithDurability makes the database durable: a write-ahead log and
// checkpoint snapshots live under dir (snapshot.irdb + wal/). Open
// recovers whatever the directory holds — newest snapshot, then WAL
// replay past its watermark — so a kill -9 at any point resumes at
// exactly the last acknowledged write. Every append/delete is logged
// (and fsynced per WithFsync) before it is applied.
func WithDurability(dir string) Option { return func(c *config) { c.durDir = dir } }

// WithFsync sets the WAL fsync policy: "always" (default — every
// acknowledged write survives any crash), "interval" (fsync at most
// every WithFsyncInterval; a crash loses at most one interval), or
// "off" (the OS decides; fastest, weakest). Only meaningful with
// WithDurability.
func WithFsync(policy string) Option { return func(c *config) { c.fsyncPolicy = policy } }

// WithFsyncInterval sets the minimum time between fsyncs under
// WithFsync("interval"); default 100ms.
func WithFsyncInterval(d time.Duration) Option { return func(c *config) { c.fsyncInterval = d } }

// Open creates a database. Without WithDurability it starts empty and
// in-memory; with it, Open recovers the durability directory's snapshot
// and write-ahead log first. Load data with LoadTriples / LoadTriplesTSV
// / LoadDocs, grow it live with AppendTriples / AppendDocs, then query.
func Open(opts ...Option) (*DB, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	cat := catalog.New(cfg.cacheEntries)
	if cfg.cacheBytes > 0 {
		cat.Cache().SetMaxBytes(cfg.cacheBytes)
	}
	eng := engine.NewCtx(cat)
	eng.Parallelism = cfg.parallelism
	store := triple.NewStore(cat)
	db := &DB{
		cat:        cat,
		store:      store,
		eng:        eng,
		ingest:     ingest.New(cat, store, DocsTable),
		synonyms:   text.SynonymDict(cfg.synonyms),
		strategies: make(map[string]*strategy.Strategy),
	}
	if cfg.maxInFlight > 0 {
		db.inFlight = make(chan struct{}, cfg.maxInFlight)
		db.admissionWait = cfg.admissionWait
	}
	if cfg.memPoolBytes > 0 || cfg.queryMemBytes > 0 {
		db.memPool = memory.NewPool(cfg.memPoolBytes)
		db.queryMemBytes = cfg.queryMemBytes
	}
	if cfg.durDir != "" {
		if cfg.fsyncPolicy == "" {
			cfg.fsyncPolicy = "always"
		}
		policy, err := wal.ParsePolicy(cfg.fsyncPolicy)
		if err != nil {
			return nil, err
		}
		opt := wal.Options{Policy: policy, Interval: cfg.fsyncInterval}
		if err := db.ingest.OpenDurable(cfg.durDir, opt); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// Close marks the database closed, drains in-flight queries, and drops
// the cache. New operations return ErrClosed immediately; Close returns
// once every outstanding Query/Search/SearchDocs call has finished (use
// context cancellation on those calls to bound the drain).
func (db *DB) Close() error {
	if db.closed.Swap(true) {
		return ErrClosed
	}
	db.execMu.Lock()
	defer db.execMu.Unlock()
	db.cat.Cache().Clear()
	return db.ingest.Close()
}

func (db *DB) check() error {
	if db.closed.Load() {
		return ErrClosed
	}
	return nil
}

// begin registers a query execution with the Close drain. The closed
// check happens under the read lock, so once Close holds the write side
// no new query can slip in.
func (db *DB) begin() (end func(), err error) {
	db.execMu.RLock()
	if db.closed.Load() {
		db.execMu.RUnlock()
		return nil, ErrClosed
	}
	return db.execMu.RUnlock, nil
}

// acquire admits one query, queueing context-aware when the in-flight
// limit is reached. When an admission wait is configured, queueing is
// additionally bounded: a query that cannot start within the wait fails
// fast with ErrOverloaded instead of deepening the backlog. The returned
// release func is a no-op when admission is unbounded.
func (db *DB) acquire(ctx context.Context) (release func(), err error) {
	if db.inFlight == nil {
		return func() {}, nil
	}
	select {
	case db.inFlight <- struct{}{}:
		return func() { <-db.inFlight }, nil
	default:
	}
	if db.admissionWait > 0 {
		t := time.NewTimer(db.admissionWait)
		defer t.Stop()
		select {
		case db.inFlight <- struct{}{}:
			return func() { <-db.inFlight }, nil
		case <-t.C:
			db.overloaded.Add(1)
			return nil, ErrOverloaded
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	select {
	case db.inFlight <- struct{}{}:
		return func() { <-db.inFlight }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// reserve attaches a per-query memory reservation to ctx on a governed
// database. The returned done func releases the reservation back to the
// pool; it is idempotent and safe to call after the query failed. On an
// ungoverned database both returns are no-ops.
func (db *DB) reserve(ctx context.Context) (context.Context, func()) {
	if db.memPool == nil {
		return ctx, func() {}
	}
	res := db.memPool.Reserve(db.queryMemBytes)
	return memory.WithReservation(ctx, res), func() { res.Release() }
}

// ---------------------------------------------------------------------------
// Loading

// Triple is one probabilistic statement. Object must be a string, int,
// int64 or float64 (objects are partitioned by physical type, as in the
// paper). P is the tuple probability; 0 means certain (1.0).
type Triple struct {
	Subject  string
	Property string
	Object   any
	P        float64
}

// convertTriples maps the facade's any-typed objects onto the store's
// typed partitions.
func convertTriples(triples []Triple) ([]triple.Triple, error) {
	converted := make([]triple.Triple, len(triples))
	for i, t := range triples {
		var obj triple.Object
		switch x := t.Object.(type) {
		case string:
			obj = triple.String(x)
		case int:
			obj = triple.Int(int64(x))
		case int64:
			obj = triple.Int(x)
		case float64:
			obj = triple.Float(x)
		default:
			return nil, fmt.Errorf("irdb: triple %d: unsupported object type %T", i, t.Object)
		}
		converted[i] = triple.Triple{Subject: t.Subject, Property: t.Property, Obj: obj, P: t.P}
	}
	return converted, nil
}

// LoadTriples replaces the triple store's contents. The materialization
// cache is invalidated (cached sub-queries may depend on the old data).
// On a durable database the replace is checkpointed immediately.
func (db *DB) LoadTriples(triples []Triple) error {
	if err := db.check(); err != nil {
		return err
	}
	converted, err := convertTriples(triples)
	if err != nil {
		return err
	}
	return db.ingest.ReplaceTriples(converted)
}

// LoadTriplesTSV loads triples from tab-separated lines
// (subject, property, object, optional probability), replacing the store
// contents. It returns the number of triples loaded.
func (db *DB) LoadTriplesTSV(r io.Reader) (int, error) {
	if err := db.check(); err != nil {
		return 0, err
	}
	triples, err := triple.ReadTSV(r)
	if err != nil {
		return 0, err
	}
	if err := db.ingest.ReplaceTriples(triples); err != nil {
		return 0, err
	}
	return len(triples), nil
}

// AppendTriples appends triples to the store without touching existing
// rows — live ingest. On a durable database the batch is written to the
// WAL (and fsynced per policy) before it is applied: a nil error means
// the rows survive any crash. Cached query results over untouched
// tables stay resident; only plans reading a changed partition are
// invalidated (watermark rule). Returns the number of rows appended.
func (db *DB) AppendTriples(triples []Triple) (int, error) {
	if err := db.check(); err != nil {
		return 0, err
	}
	converted, err := convertTriples(triples)
	if err != nil {
		return 0, err
	}
	return db.ingest.AppendTriples(converted)
}

// DeleteTriples removes every row matching one of the given (subject,
// property, object) keys; probabilities are not part of the key. Same
// durability and cache semantics as AppendTriples. Returns the number of
// rows removed.
func (db *DB) DeleteTriples(keys []Triple) (int, error) {
	if err := db.check(); err != nil {
		return 0, err
	}
	converted, err := convertTriples(keys)
	if err != nil {
		return 0, err
	}
	return db.ingest.DeleteTriples(converted)
}

// Doc is one document of the keyword-search collection. P is the document
// probability; 0 means certain.
type Doc struct {
	ID   string
	Text string
	P    float64
}

// DocsTable is the base table LoadDocs fills and SearchDocs queries.
const DocsTable = "docs"

// LoadDocs replaces the document collection backing SearchDocs. Document
// text is indexed on demand: the first search pays the inverted-view
// materialization, later searches run hot from the cache. On a durable
// database the replace is checkpointed immediately.
func (db *DB) LoadDocs(docs []Doc) error {
	if err := db.check(); err != nil {
		return err
	}
	b := relation.NewBuilder(
		[]string{"docID", "data"},
		[]vector.Kind{vector.String, vector.String})
	for _, d := range docs {
		p := d.P
		if p == 0 {
			p = 1.0
		}
		b.AddP(p, d.ID, d.Text)
	}
	if err := db.ingest.ReplaceTable(DocsTable, b.Build()); err != nil {
		return err
	}
	db.searcher.Store(nil)
	return nil
}

// AppendDocs appends documents to the collection backing SearchDocs —
// live ingest with the same write-ahead durability as AppendTriples.
// The cached searcher is discarded so the next search sees the new
// documents. Returns the number of documents appended.
func (db *DB) AppendDocs(docs []Doc) (int, error) {
	if err := db.check(); err != nil {
		return 0, err
	}
	converted := make([]ingest.Doc, len(docs))
	for i, d := range docs {
		converted[i] = ingest.Doc{ID: d.ID, Text: d.Text, P: d.P}
	}
	n, err := db.ingest.AppendDocs(converted)
	if err != nil {
		return n, err
	}
	db.searcher.Store(nil)
	return n, nil
}

// Checkpoint writes a durable snapshot stamped with the WAL watermark it
// covers and rotates the log, bounding recovery replay time. Returns
// ErrNotDurable on a database opened without WithDurability.
func (db *DB) Checkpoint() error {
	if err := db.check(); err != nil {
		return err
	}
	return db.ingest.Checkpoint()
}

// ---------------------------------------------------------------------------
// Snapshots

// SaveSnapshot durably writes the base tables (dictionaries included) to
// path: temp file in the same directory, per-section CRC32 checksums,
// fsync, atomic rename. A crash at any point leaves either the previous
// file or the new one — never a torn mix. The materialization cache is
// not saved; it rebuilds on demand.
func (db *DB) SaveSnapshot(path string) error {
	end, err := db.begin()
	if err != nil {
		return err
	}
	defer end()
	return db.cat.SaveFile(path)
}

// LoadSnapshot replaces the base tables with the contents of a snapshot
// file, invalidating the materialization cache. Every checksum and
// structural invariant is verified before anything is replaced: on a
// corrupt file LoadSnapshot returns an error matching ErrCorruptSnapshot
// and the database is unchanged.
func (db *DB) LoadSnapshot(path string) error {
	end, err := db.begin()
	if err != nil {
		return err
	}
	defer end()
	if err := db.ingest.LoadSnapshotFile(path); err != nil {
		return err
	}
	db.searcher.Store(nil)
	return nil
}

// ---------------------------------------------------------------------------
// Queries

// Query parses, compiles and executes a SpinQL program, returning the
// last statement's result. Each call re-parses and re-compiles src; for
// repeated execution use Prepare, which does both exactly once.
// Statements with ?name parameters must go through Prepare.
func (db *DB) Query(ctx context.Context, src string) (*Result, error) {
	end, err := db.begin()
	if err != nil {
		return nil, err
	}
	defer end()
	naive, plan, err := db.compile(src)
	if err != nil {
		return nil, err
	}
	if params := engine.Params(naive); len(params) > 0 {
		return nil, fmt.Errorf("irdb: statement has parameters %v; use Prepare and bind them", params)
	}
	release, err := db.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	qctx, done := db.reserve(ctx)
	defer done()
	db.queries.Add(1)
	rel, err := db.eng.Exec(qctx, plan)
	if err != nil {
		return nil, err
	}
	return &Result{rel: rel}, nil
}

// compile parses src against a fresh triples environment, lowers the
// result onto the engine, and optimizes the plan, bumping the
// parse/compile counters Stats reports (prepared statements pay them
// once, ad-hoc queries per call). Both the naive plan as compiled and the
// optimized plan actually executed are returned; the two produce
// bit-identical results.
func (db *DB) compile(src string) (naive, optimized engine.Node, err error) {
	db.parses.Add(1)
	prog, err := spinql.Parse(src, spinql.TriplesEnv())
	if err != nil {
		return nil, nil, err
	}
	db.compiles.Add(1)
	naive, err = prog.Result().Compile()
	if err != nil {
		return nil, nil, err
	}
	return naive, db.eng.Optimize(naive), nil
}

// Explain parses and compiles src and renders the engine plan — both the
// naive plan as compiled and, when the optimizer changed it, the
// optimized plan that Query would execute.
func (db *DB) Explain(src string) (string, error) {
	if err := db.check(); err != nil {
		return "", err
	}
	naive, optimized, err := db.compile(src)
	if err != nil {
		return "", err
	}
	return engine.ExplainChange(naive, optimized), nil
}

// ToSQL parses src and renders its SQL translation — the SpinQL-to-SQL
// step of section 2.3 of the paper.
func (db *DB) ToSQL(src string) (string, error) {
	if err := db.check(); err != nil {
		return "", err
	}
	return spinql.ToSQL(src, spinql.TriplesEnv())
}

// ---------------------------------------------------------------------------
// Strategies and search

// InstallStrategy validates and installs a strategy from its JSON
// serialization, returning its name. Installing over an existing name
// replaces it.
func (db *DB) InstallStrategy(spec []byte) (string, error) {
	if err := db.check(); err != nil {
		return "", err
	}
	st, err := strategy.FromJSON(spec)
	if err != nil {
		return "", err
	}
	db.mu.Lock()
	db.strategies[st.Name] = st
	db.mu.Unlock()
	return st.Name, nil
}

// InstallBuiltinStrategies installs the strategies shipped with the
// reproduction — the Figure 2 toy strategy, the Figure 3 auction strategy
// and its production variant — and returns their names.
func (db *DB) InstallBuiltinStrategies() []string {
	names := make([]string, 0, 3)
	for _, st := range []*strategy.Strategy{
		strategy.Toy(),
		strategy.Auction(0.7, 0.3),
		strategy.Production(),
	} {
		db.mu.Lock()
		db.strategies[st.Name] = st
		db.mu.Unlock()
		names = append(names, st.Name)
	}
	sort.Strings(names)
	return names
}

// StrategyNames returns the installed strategy names, sorted.
func (db *DB) StrategyNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.strategies))
	for n := range db.strategies {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Hit is one ranked search result.
type Hit struct {
	ID    string
	Score float64
}

// Search runs an installed strategy against a keyword query and returns
// the top k subjects. ctx's deadline and cancellation abort the plan
// mid-execution.
func (db *DB) Search(ctx context.Context, strategyName, query string, k int) ([]Hit, error) {
	end, err := db.begin()
	if err != nil {
		return nil, err
	}
	defer end()
	db.mu.RLock()
	st, ok := db.strategies[strategyName]
	db.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("irdb: no strategy %q (installed: %v)", strategyName, db.StrategyNames())
	}
	plan, err := st.Compile(&strategy.Compiler{Query: query, Synonyms: db.synonyms})
	if err != nil {
		return nil, err
	}
	ranked := db.eng.Optimize(engine.NewTopN(plan, k,
		engine.SortSpec{Col: "", Desc: true}, engine.SortSpec{Col: triple.ColSubject}))
	release, err := db.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	qctx, done := db.reserve(ctx)
	defer done()
	db.queries.Add(1)
	rel, err := db.eng.Exec(qctx, ranked)
	if err != nil {
		return nil, err
	}
	prob := rel.Prob()
	hits := make([]Hit, rel.NumRows())
	for i := range hits {
		hits[i] = Hit{ID: rel.Col(0).Vec.Format(i), Score: prob[i]}
	}
	return hits, nil
}

// SearchDocs ranks the LoadDocs collection against a keyword query with
// the default retrieval model (BM25) and returns the top k documents. The
// searcher is constructed once and cached until the next LoadDocs.
func (db *DB) SearchDocs(ctx context.Context, query string, k int) ([]Hit, error) {
	end, err := db.begin()
	if err != nil {
		return nil, err
	}
	defer end()
	s := db.searcher.Load()
	if s == nil {
		s, err = ir.NewSearcher(db.eng, engine.NewScan(DocsTable), ir.DefaultParams())
		if err != nil {
			return nil, err
		}
		db.searcher.Store(s)
	}
	release, err := db.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	qctx, done := db.reserve(ctx)
	defer done()
	db.queries.Add(1)
	irHits, err := s.Search(qctx, query, k)
	if err != nil {
		return nil, err
	}
	hits := make([]Hit, len(irHits))
	for i, h := range irHits {
		hits[i] = Hit{ID: h.DocID, Score: h.Score}
	}
	return hits, nil
}

// ---------------------------------------------------------------------------
// Statistics

// CacheStats describes the materialization cache.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Shared    uint64
	Oversize  uint64
	// StaleDrops counts computed results discarded at insertion because a
	// table they read was republished while they ran; DepInvalidations
	// counts entries evicted by watermark-selective invalidation (a live
	// append evicts only entries reading a changed table, never flushes).
	StaleDrops       uint64
	DepInvalidations uint64
	Entries          int
	AuxEntries       int
	Bytes            int64
	AuxBytes         int64
	MaxBytes         int64
}

// ExecutorStats describes the engine.
type ExecutorStats struct {
	Parallelism int
	NodeExecs   int64
	CacheHits   int64
}

// OptimizerStats counts plan-optimizer work across all queries: plans
// seen, plans changed, and per-rewrite totals.
type OptimizerStats struct {
	Plans         int64
	PlansChanged  int64
	SelectsMerged int64
	SelectsPushed int64
	EmptyRewrites int64
	ColumnsPruned int64
	JoinsSwapped  int64
	GroupsCosted  int64
}

// StatementStats counts the query-processing front end: how many parses
// and plan compilations ran (prepared statements pay one each, ad-hoc
// queries one per call) and how many queries executed.
type StatementStats struct {
	Parses   int64
	Compiles int64
	Queries  int64
}

// FaultStats counts contained failures: every entry here is an incident
// the process survived instead of crashing or serving bad data.
type FaultStats struct {
	// RecoveredPanics counts operator panics converted to PanicError.
	RecoveredPanics int64
	// CachePanics counts panics contained inside detached cache flights.
	CachePanics uint64
	// Overloaded counts queries shed with ErrOverloaded.
	Overloaded int64
	// SnapshotSaves / SnapshotLoads count successful durable snapshot
	// writes and reads; CorruptSnapshotLoads counts reads refused after
	// checksum or validation failure (the catalog was left unchanged).
	SnapshotSaves        int64
	SnapshotLoads        int64
	CorruptSnapshotLoads int64
}

// MemoryStats describes per-query memory governance. Enabled is false
// (and everything else zero) without WithQueryMemBytes or
// WithMemoryPoolBytes.
type MemoryStats struct {
	Enabled bool
	// PoolCapacity is the shared pool's byte ceiling (0 = track-only);
	// PoolUsed and PoolPeak the current and high-water bytes reserved by
	// live queries; PoolDenied the charges refused at pool scope.
	PoolCapacity int64
	PoolUsed     int64
	PoolPeak     int64
	PoolDenied   int64
	// ActiveReservations is the number of reservations currently open.
	ActiveReservations int64
	// QueryBudget is the per-query byte budget (0 = pool-bounded only).
	QueryBudget int64
	// BudgetDenials counts charges refused at either scope; each failed
	// query contributes at least one.
	BudgetDenials int64
}

// WALStats describes the write-ahead log of a durable database. Enabled
// is false (and everything else zero) without WithDurability.
type WALStats struct {
	Enabled bool
	// Records and Bytes count frames appended by this process; Fsyncs the
	// file syncs issued (policy-dependent).
	Records int64
	Bytes   int64
	Fsyncs  int64
	// Replays counts recovery passes over the log directory and
	// ReplayedRecords the records they applied.
	Replays         int64
	ReplayedRecords int64
	// Rotations counts checkpoint rotations; LastRotationUnix the time of
	// the most recent one (0 = never).
	Rotations        int64
	LastRotationUnix int64
	// Segments is the number of live segment files; LastSeq the highest
	// sequence number appended or replayed.
	Segments int
	LastSeq  int64
	// Policy is the fsync policy ("always", "interval", "off").
	Policy string
}

// IngestStats counts live-ingest activity.
type IngestStats struct {
	// AppendedTriples / DeletedTriples / AppendedDocs count rows applied,
	// recovery replay included.
	AppendedTriples int64
	DeletedTriples  int64
	AppendedDocs    int64
	// Checkpoints counts snapshot+rotate cycles.
	Checkpoints int64
	// Watermark is the catalog's publish watermark: every delta publish
	// ticks it once, and cache entries computed at an older watermark over
	// a changed table are evicted.
	Watermark uint64
	// Segments is the number of live WAL segments (0 when memory-only).
	Segments int
}

// Stats is a point-in-time snapshot of the database.
type Stats struct {
	Tables     []string
	Cache      CacheStats
	Executor   ExecutorStats
	Optimizer  OptimizerStats
	Statements StatementStats
	Faults     FaultStats
	Memory     MemoryStats
	WAL        WALStats
	Ingest     IngestStats
}

// Stats returns a snapshot of catalog, cache and executor statistics.
func (db *DB) Stats() Stats {
	cs := db.cat.Cache().Stats()
	ss := db.cat.SnapshotStats()
	os := db.eng.OptimizerStats()
	par := db.eng.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	is := db.ingest.Stats()
	var ms MemoryStats
	if db.memPool != nil {
		ms = MemoryStats{
			Enabled:            true,
			PoolCapacity:       db.memPool.Capacity(),
			PoolUsed:           db.memPool.Used(),
			PoolPeak:           db.memPool.Peak(),
			PoolDenied:         db.memPool.Denied(),
			ActiveReservations: db.memPool.Active(),
			QueryBudget:        db.queryMemBytes,
			BudgetDenials:      db.eng.BudgetDenials(),
		}
	}
	var ws WALStats
	if raw, ok := db.ingest.WALStats(); ok {
		ws = WALStats{
			Enabled: true,
			Records: raw.Records, Bytes: raw.Bytes, Fsyncs: raw.Fsyncs,
			Replays: raw.Replays, ReplayedRecords: raw.ReplayedRecords,
			Rotations: raw.Rotations, LastRotationUnix: raw.LastRotationUnix,
			Segments: raw.Segments, LastSeq: raw.LastSeq, Policy: raw.Policy,
		}
	}
	return Stats{
		Tables: db.cat.TableNames(),
		Cache: CacheStats{
			Hits: cs.Hits, Misses: cs.Misses, Evictions: cs.Evictions,
			Shared: cs.Shared, Oversize: cs.Oversize,
			StaleDrops: cs.StaleDrops, DepInvalidations: cs.DepInvalidations,
			Entries: cs.Entries, AuxEntries: cs.AuxEntries,
			Bytes: cs.Bytes, AuxBytes: cs.AuxBytes, MaxBytes: cs.MaxBytes,
		},
		Executor: ExecutorStats{
			Parallelism: par,
			NodeExecs:   db.eng.NodeExecs(),
			CacheHits:   db.eng.CacheHits(),
		},
		Optimizer: OptimizerStats{
			Plans:         os.Plans,
			PlansChanged:  os.PlansChanged,
			SelectsMerged: os.SelectsMerged,
			SelectsPushed: os.SelectsPushed,
			EmptyRewrites: os.EmptyRewrites,
			ColumnsPruned: os.ColumnsPruned,
			JoinsSwapped:  os.JoinsSwapped,
			GroupsCosted:  os.GroupsCosted,
		},
		Statements: StatementStats{
			Parses:   db.parses.Load(),
			Compiles: db.compiles.Load(),
			Queries:  db.queries.Load(),
		},
		Faults: FaultStats{
			RecoveredPanics:      db.eng.RecoveredPanics(),
			CachePanics:          cs.Panics,
			Overloaded:           db.overloaded.Load(),
			SnapshotSaves:        ss.Saves,
			SnapshotLoads:        ss.Loads,
			CorruptSnapshotLoads: ss.CorruptLoads,
		},
		Memory: ms,
		WAL:    ws,
		Ingest: IngestStats{
			AppendedTriples: is.AppendedTriples,
			DeletedTriples:  is.DeletedTriples,
			AppendedDocs:    is.AppendedDocs,
			Checkpoints:     is.Checkpoints,
			Watermark:       is.Watermark,
			Segments:        is.Segments,
		},
	}
}
