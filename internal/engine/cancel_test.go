package engine

// Mid-query cancellation suite: a cancelled context must abort execution
// without waiting for plan completion — during the join probe, during the
// sort k-way merge, and while waiting on another query's single-flight
// computation — and must leave the materialization cache consistent: no
// partial result is ever returned or cached, and an identical query run
// afterwards produces exactly the uncancelled result. Run under -race in
// CI, these tests also pin down that cancellation introduces no data
// races between the cancelling goroutine and in-flight morsel workers.

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"irdb/internal/catalog"
	"irdb/internal/relation"
	"irdb/internal/vector"
)

// cancelRel builds an n-row relation with an int64 key column of the
// given cardinality and a payload column.
func cancelRel(n, cardinality int, seed int64) *relation.Relation {
	r := rand.New(rand.NewSource(seed))
	keys := make([]int64, n)
	payload := make([]int64, n)
	for i := range keys {
		keys[i] = int64(r.Intn(cardinality))
		payload[i] = r.Int63()
	}
	return relation.MustFromColumns([]relation.Column{
		{Name: "k", Vec: vector.FromInt64s(keys)},
		{Name: "v", Vec: vector.FromInt64s(payload)},
	}, nil)
}

// runCancelled executes plan twice: once uncancelled (the reference), and
// once with a context cancelled shortly after execution starts. It
// asserts the cancelled run returns context.Canceled well before the
// uncancelled duration, and that a final uncancelled re-run still matches
// the reference — the cache was not poisoned by the aborted attempt.
func runCancelled(t *testing.T, ctx *Ctx, plan Node) {
	t.Helper()
	start := time.Now()
	want, err := ctx.Exec(context.Background(), plan)
	if err != nil {
		t.Fatalf("reference execution: %v", err)
	}
	full := time.Since(start)

	c, cancel := context.WithCancel(context.Background())
	go func() {
		// Let execution get into its hot loops before cancelling.
		time.Sleep(full / 20)
		cancel()
	}()
	start = time.Now()
	_, err = ctx.Exec(c, plan)
	elapsed := time.Since(start)
	if err != context.Canceled {
		t.Fatalf("cancelled execution returned %v, want context.Canceled", err)
	}
	// Generous bound: the run must abort well before plan completion.
	// (Checks fire at chunk boundaries and every few thousand rows of the
	// probe/merge loops, so the overhang is a fraction of the full run.)
	if full > 100*time.Millisecond && elapsed > full*3/4 {
		t.Errorf("cancelled execution took %v of an uncancelled %v — cancellation did not interrupt the plan", elapsed, full)
	}

	got, err := ctx.Exec(context.Background(), plan)
	if err != nil {
		t.Fatalf("re-execution after cancel: %v", err)
	}
	if got.NumRows() != want.NumRows() {
		t.Fatalf("re-execution after cancel: %d rows, want %d (cache inconsistent)", got.NumRows(), want.NumRows())
	}
	if want.NumRows() > 0 && got.Format(50) != want.Format(50) {
		t.Fatalf("re-execution after cancel differs from reference (cache inconsistent)")
	}
}

func TestCancelDuringJoinProbe(t *testing.T) {
	cat := catalog.New(0)
	// High fan-out: every probe row matches ~build/cardinality rows, so
	// the probe loop dominates.
	cat.Put("build", cancelRel(20_000, 200, 1))
	cat.Put("probe", cancelRel(30_000, 200, 2))
	for _, par := range []int{1, 2} {
		t.Run(fmt.Sprintf("par%d", par), func(t *testing.T) {
			ctx := NewCtx(cat)
			ctx.Parallelism = par
			plan := NewHashJoin(NewScan("probe"), NewScan("build"),
				[]string{"k"}, []string{"k"}, JoinIndependent)
			runCancelled(t, ctx, plan)
		})
	}
}

func TestCancelDuringSortMerge(t *testing.T) {
	cat := catalog.New(0)
	cat.Put("big", cancelRel(600_000, 1<<30, 3))
	// Parallelism 2 splits the sort into per-morsel runs; the k-way merge
	// then checks cancellation every few thousand pops.
	ctx := NewCtx(cat)
	ctx.Parallelism = 2
	plan := NewSort(NewScan("big"), SortSpec{Col: "v"}, SortSpec{Col: "k"})
	runCancelled(t, ctx, plan)
}

func TestCancelDuringAggregate(t *testing.T) {
	cat := catalog.New(0)
	cat.Put("big", cancelRel(500_000, 250_000, 4))
	ctx := NewCtx(cat)
	ctx.Parallelism = 2
	plan := NewAggregate(NewScan("big"), []string{"k"},
		[]AggSpec{{Op: Sum, Col: "v", As: "s"}}, GroupCertain)
	runCancelled(t, ctx, plan)
}

// TestCancelDuringNormalize: grouped Normalize guards against folding
// over a grouping cut short by cancellation (whose groupOf still holds
// per-morsel local ids) — the query must return context.Canceled, never
// panic.
func TestCancelDuringNormalize(t *testing.T) {
	cat := catalog.New(0)
	cat.Put("big", cancelRel(300_000, 150_000, 10))
	ctx := NewCtx(cat)
	ctx.Parallelism = 2
	plan := NewNormalize(NewScan("big"), []int{0}, NormSum)
	runCancelled(t, ctx, plan)
}

// TestCancelledNeverCached: an execution aborted mid-plan must not leave
// a partial relation in the materialization cache.
func TestCancelledNeverCached(t *testing.T) {
	cat := catalog.New(0)
	cat.Put("build", cancelRel(50_000, 100, 5))
	cat.Put("probe", cancelRel(100_000, 100, 6))
	ctx := NewCtx(cat)
	ctx.Parallelism = 2
	plan := NewMaterialize(NewHashJoin(NewScan("probe"), NewScan("build"),
		[]string{"k"}, []string{"k"}, JoinIndependent))

	c, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	if _, err := ctx.Exec(c, plan); err != context.Canceled {
		t.Skipf("plan finished before cancellation (%v); nothing to assert", err)
	}
	if n := cat.Cache().Len(); n != 0 {
		t.Fatalf("cache holds %d entries after a cancelled execution, want 0", n)
	}
	// The same plan must now compute cleanly and cache its full result.
	want, err := ctx.Exec(context.Background(), plan)
	if err != nil {
		t.Fatalf("re-execution: %v", err)
	}
	cached, hit := cat.Cache().Get(plan.Fingerprint())
	if !hit || cached.NumRows() != want.NumRows() {
		t.Fatalf("clean re-execution not cached correctly (hit=%v)", hit)
	}
}

// flipCtx is a context whose Err() becomes context.Canceled after a
// fixed number of Err() calls — a deterministic way to land cancellation
// in a specific internal phase of an operator.
type flipCtx struct {
	context.Context
	mu    sync.Mutex
	after int
}

func (f *flipCtx) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.after <= 0 {
		return context.Canceled
	}
	f.after--
	return nil
}

// TestBuildBucketsCancelledMidBuild: a build cancelled during its
// table-fill phase must return an error, never a partial index — a
// partial index reaching the aux cache would panic every later probe on
// its zero-valued partitions.
func TestBuildBucketsCancelledMidBuild(t *testing.T) {
	hashes := make([]uint64, 50_000)
	for i := range hashes {
		hashes[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	ctx := &Ctx{Parallelism: 4} // multi-morsel: partitioned two-phase build
	// Sweep the flip point across every internal check: whichever phase
	// the cancellation lands in, buildBuckets must not return (nil error,
	// partial index).
	for after := 0; after < 40; after++ {
		c := &flipCtx{Context: context.Background(), after: after}
		idx, err := buildBuckets(c, ctx, hashes)
		if err != nil {
			continue
		}
		for _, h := range hashes {
			idx.lookup(h) // must not panic, must be a complete table
		}
	}
}

// TestCancelNeverPoisonsJoinIndex: cancelling a join whose build-side
// index is aux-cacheable (CacheAll) must never cache a partially built
// index — later live queries would panic probing its zero-valued
// partitions. Cancellation is raced at varying delays to sweep the
// build/probe phases.
func TestCancelNeverPoisonsJoinIndex(t *testing.T) {
	cat := catalog.New(0)
	cat.Put("build", cancelRel(120_000, 60_000, 11))
	cat.Put("probe", cancelRel(120_000, 60_000, 12))
	ctx := NewCtx(cat)
	ctx.CacheAll = true
	ctx.Parallelism = 4
	plan := NewHashJoin(NewScan("probe"), NewScan("build"),
		[]string{"k"}, []string{"k"}, JoinIndependent)

	want, err := ctx.Exec(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	for _, delay := range []time.Duration{
		50 * time.Microsecond, 200 * time.Microsecond, time.Millisecond,
		3 * time.Millisecond, 10 * time.Millisecond,
	} {
		cat.Cache().Clear()
		ctx.ResetStats()
		c, cancel := context.WithTimeout(context.Background(), delay)
		_, _ = ctx.Exec(c, plan)
		cancel()
		// Whatever phase the cancellation hit, a clean re-run must work
		// and match the reference — a poisoned cached index would panic
		// in the probe or drop matches.
		got, err := ctx.Exec(context.Background(), plan)
		if err != nil {
			t.Fatalf("delay %v: re-run: %v", delay, err)
		}
		if got.NumRows() != want.NumRows() {
			t.Fatalf("delay %v: re-run rows = %d, want %d (cached index poisoned)", delay, got.NumRows(), want.NumRows())
		}
	}
}

// TestCancelPreemptsExecution: a context cancelled before Exec starts
// runs nothing at all.
func TestCancelPreemptsExecution(t *testing.T) {
	cat := catalog.New(0)
	cat.Put("t", cancelRel(10, 10, 7))
	ctx := NewCtx(cat)
	c, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ctx.Exec(c, NewScan("t")); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ctx.NodeExecs(); n != 0 {
		t.Fatalf("executed %d nodes under a pre-cancelled context", n)
	}
}

// TestCancelDeadline: DeadlineExceeded propagates like Canceled.
func TestCancelDeadline(t *testing.T) {
	cat := catalog.New(0)
	cat.Put("build", cancelRel(60_000, 200, 8))
	cat.Put("probe", cancelRel(120_000, 200, 9))
	ctx := NewCtx(cat)
	ctx.Parallelism = 2
	plan := NewHashJoin(NewScan("probe"), NewScan("build"),
		[]string{"k"}, []string{"k"}, JoinIndependent)
	c, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if _, err := ctx.Exec(c, plan); err != context.DeadlineExceeded {
		t.Skipf("plan beat the 1ms deadline (%v)", err)
	}
}
