// Quickstart walks through the paper's sections in order on the toy
// product scenario, entirely through the public irdb facade: the flexible
// triple data model (2.2), score propagation through SpinQL with a
// prepared, parameterized query (2.3), keyword search in the relational
// engine (2.1), and the block-based strategy abstraction (2.4).
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	"irdb"
)

func main() {
	// --- Section 2.2: a flexible data model. Everything is triples; no
	// application-specific schema. Note the confidence-scored category of
	// p4 — uncertainty "originating from the data".
	db, err := irdb.Open(irdb.WithCacheBytes(64 << 20))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	err = db.LoadTriples([]irdb.Triple{
		{Subject: "p1", Property: "category", Object: "toy"},
		{Subject: "p1", Property: "description", Object: "wooden train set for young engineers"},
		{Subject: "p2", Property: "category", Object: "toy"},
		{Subject: "p2", Property: "description", Object: "racing cars with wooden track"},
		{Subject: "p3", Property: "category", Object: "book"},
		{Subject: "p3", Property: "description", Object: "a history of wooden toys"},
		{Subject: "p4", Property: "category", Object: "toy", P: 0.7},
		{Subject: "p4", Property: "description", Object: "train station play set"},
		{Subject: "p1", Property: "price", Object: 25},
		{Subject: "p2", Property: "price", Object: 40},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Every query-running call takes a context; a deadline or cancellation
	// reaches into the engine's morsel loops, so slow queries can be
	// abandoned mid-plan.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// --- Section 2.3: the paper's SpinQL program with the category as a
	// ?parameter, prepared once and executed per binding. Parse and
	// compilation happen exactly once, in Prepare.
	program := `
docs = PROJECT [$1,$6] (
  JOIN INDEPENDENT [$1=$1] (
    SELECT [$2="category" and $3=?cat] (triples),
    SELECT [$2="description"] (triples) ) );
`
	fmt.Println("SpinQL program (paper, section 2.3; ?cat is a parameter):")
	fmt.Println(program)
	sql, err := db.ToSQL(program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("translates to SQL:")
	fmt.Println(sql)
	fmt.Println()

	stmt, err := db.Prepare(program)
	if err != nil {
		log.Fatal(err)
	}
	for _, cat := range []string{"toy", "book"} {
		docs, qerr := stmt.Query(ctx, irdb.P("cat", cat))
		if qerr != nil {
			log.Fatal(qerr)
		}
		fmt.Printf("docs view for ?cat=%q (note p4 carries p=0.7 from its category triple):\n", cat)
		fmt.Println(docs.Format(-1))
	}

	// --- Section 2.1: BM25 keyword search over a document collection. The
	// inverted view is built on demand by the first search; nothing was
	// configured at load time.
	err = db.LoadDocs([]irdb.Doc{
		{ID: "p1", Text: "wooden train set for young engineers"},
		{ID: "p2", Text: "racing cars with wooden track"},
		{ID: "p4", Text: "train station play set"},
	})
	if err != nil {
		log.Fatal(err)
	}
	hits, err := db.SearchDocs(ctx, "wooden train", 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("BM25 ranking for query 'wooden train' over toy descriptions:")
	for rank, h := range hits {
		fmt.Printf("  %d. %-4s score=%.4f\n", rank+1, h.ID, h.Score)
	}
	fmt.Println()

	// --- Section 2.4: the same search as a block strategy — three
	// connected blocks, no query plans in sight.
	db.InstallBuiltinStrategies()
	results, err := db.Search(ctx, "toy-products", "wooden train", 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("strategy result (scores max-normalized to probabilities):")
	sort.SliceStable(results, func(i, j int) bool { return results[i].Score > results[j].Score })
	for rank, h := range results {
		fmt.Printf("  %d. %-4s p=%.4f\n", rank+1, h.ID, h.Score)
	}

	st := db.Stats()
	fmt.Printf("\nstats: %d parses, %d compiles, %d queries, cache %d entries\n",
		st.Statements.Parses, st.Statements.Compiles, st.Statements.Queries, st.Cache.Entries)
}
