// Package irdb is a from-scratch Go reproduction of "Challenges for
// industrial-strength Information Retrieval on Databases" (Cornacchia,
// Hildebrand, de Vries, Dorssers; EDBT/ICDT 2017 workshops): information
// retrieval implemented on a relational column store, with a
// probabilistic triple data model, the SpinQL algebra language, and a
// block-based search strategy layer on top.
//
// The root package holds the per-experiment benchmarks (bench_test.go);
// the implementation lives under internal/ (see DESIGN.md for the system
// inventory) with runnable entry points under cmd/ and examples/.
package irdb
