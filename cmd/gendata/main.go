// Command gendata emits synthetic datasets as triples TSV, the input
// format of cmd/irdb. Scenarios mirror the paper's collections: the toy
// product catalog (section 2), the auction graph (section 3), and the
// wide-property graph used by the partitioning experiment (section 2.2).
//
// Usage:
//
//	gendata -scenario products -n 1000 > products.tsv
//	gendata -scenario auction -n 8000 -out auction.tsv
//	gendata -scenario wide -n 5000 -props 64 > wide.tsv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"irdb/internal/triple"
	"irdb/internal/vector"
	"irdb/internal/workload"
)

func main() {
	var (
		scenario = flag.String("scenario", "products", "products | auction | wide")
		n        = flag.Int("n", 1000, "number of primary entities (products / lots / subjects)")
		props    = flag.Int("props", 32, "distinct properties (wide scenario)")
		vocab    = flag.Int("vocab", 20000, "vocabulary size")
		seed     = flag.Int64("seed", 42, "generator seed")
		out      = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	var triples []triple.Triple
	switch *scenario {
	case "products":
		triples = workload.ProductCatalog(*n, *vocab, *seed)
	case "auction":
		cfg := workload.DefaultAuctionConfig()
		cfg.Lots = *n
		cfg.Auctions = *n / 320
		if cfg.Auctions < 1 {
			cfg.Auctions = 1
		}
		cfg.Sellers = cfg.Auctions * 2
		cfg.VocabSize = *vocab
		cfg.Seed = *seed
		triples = workload.AuctionGraph(cfg)
	case "wide":
		triples = workload.WidePropertyGraph(*n, *props, *vocab, *seed)
	default:
		fmt.Fprintf(os.Stderr, "gendata: unknown scenario %q\n", *scenario)
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gendata: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := triple.WriteTSV(w, triples); err != nil {
		fmt.Fprintf(os.Stderr, "gendata: %v\n", err)
		os.Exit(1)
	}
	// Report how well the dataset dictionary-encodes: the loader interns
	// subjects, properties and string objects into one shared dict, so the
	// distinct-string count here is exactly the dict the store will build.
	dict := vector.NewDict(len(triples))
	var raw, interned int64
	intern := func(s string) {
		raw += int64(len(s))
		before := dict.Len()
		if dict.Put(s); dict.Len() > before {
			interned += int64(len(s))
		}
	}
	for _, t := range triples {
		intern(t.Subject)
		intern(t.Property)
		if t.Obj.Kind == vector.String {
			intern(t.Obj.Str)
		}
	}
	fmt.Fprintf(os.Stderr, "gendata: wrote %d triples (%s scenario); dict: %d distinct strings, %d KiB interned vs %d KiB raw\n",
		len(triples), *scenario, dict.Len(), interned/1024, raw/1024)
}
