// Package irdb is a from-scratch Go reproduction of "Challenges for
// industrial-strength Information Retrieval on Databases" (Cornacchia,
// Hildebrand, de Vries, Dorssers; EDBT/ICDT 2017 workshops): information
// retrieval implemented on a relational column store, with a
// probabilistic triple data model, the SpinQL algebra language, and a
// block-based search strategy layer on top.
//
// # The public API
//
// This package is the stable facade over the engine — the shape a
// production deployment programs against. Open a database, load data,
// and query it; every query-running method takes a context.Context whose
// deadline and cancellation reach into the engine's morsel loops, so an
// abandoned request stops mid-plan instead of holding resources until
// completion:
//
//	db, err := irdb.Open(
//		irdb.WithParallelism(8),
//		irdb.WithCacheBytes(256<<20),
//		irdb.WithMaxInFlight(16),
//		irdb.WithDurability("/var/lib/irdb"), // optional: WAL + snapshots
//	)
//	if err != nil { ... }
//	defer db.Close()
//	db.LoadTriples(triples)
//
//	stmt, _ := db.Prepare(`SELECT [$2="category" and $3=?cat] (triples);`)
//	res, err := stmt.Query(ctx, irdb.P("cat", "toy"))
//
// # Memory governance and streamed results
//
// WithQueryMemBytes bounds the bytes one query may hold in intermediate
// state (join build tables, sort runs, aggregation accumulators,
// gathered outputs); WithMemoryPoolBytes caps all concurrent queries
// together. A query over either bound aborts cleanly with
// ErrBudgetExceeded — never cached, nothing leaked, and a query that
// fits is bit-identical to an unbudgeted run. Stmt.QueryStream returns
// the same rows as Stmt.Query but hands them out in batches, holding
// the query's admission slot and memory reservation until the consumer
// closes (or exhausts) the stream — the shape a server encoding rows to
// a slow client needs:
//
//	db, _ := irdb.Open(irdb.WithQueryMemBytes(64<<20), irdb.WithMemoryPoolBytes(512<<20))
//	st, err := stmt.QueryStream(ctx, irdb.P("cat", "toy"))
//	if errors.Is(err, irdb.ErrBudgetExceeded) { ... } // terminal: narrow the query or raise the budget
//	defer st.Close()
//	for st.Next() {
//		b := st.Batch() // a *Result view of up to 1024 rows
//		for i := 0; i < b.NumRows(); i++ { emit(b.Value(i, 0), b.Prob(i)) }
//	}
//	if st.Err() != nil { ... } // cancelled / disconnected mid-stream
//
// The HTTP layer speaks the same taxonomy: the server sheds overload as
// 503 + Retry-After, answers budget denials with 507 (terminal), streams
// /search?stream=1 as ndjson frames, and exposes /healthz and /readyz;
// the client package (irdb/client) retries the retryable statuses with
// jittered, deadline-aware exponential backoff and fails fast on the
// terminal ones:
//
//	c := client.New("http://127.0.0.1:8080", client.Config{MaxAttempts: 5})
//	resp, err := c.Search(ctx, "auction-lots", "wooden train", 10)
//	switch {
//	case errors.Is(err, client.ErrBudgetExceeded): // 507: do not retry
//	case errors.Is(err, client.ErrUnavailable):    // retries exhausted against 503s
//	}
//
// With WithDurability, writes are logged to a write-ahead log before
// they apply: DB.AppendTriples, DB.DeleteTriples and DB.AppendDocs
// return only after the batch is fsynced (per WithFsync policy), a
// crash recovers to exactly the last acknowledged write on the next
// Open, and DB.Checkpoint compacts the log into a checksummed snapshot.
// Live appends land in delta segments over the frozen base columns and
// evict only the cache entries that read a changed table (the watermark
// rule); see internal/engine/README.md, "Durability model".
//
// Prepared statements parse and compile exactly once; Query binds ?name
// placeholders to literals with a structural substitution thousands of
// times cheaper than re-parsing. Sub-plans that do not depend on any
// parameter are pointer-shared across bindings, so their fingerprints —
// and materialization cache entries — are reused whatever values are
// bound. Ad-hoc execution (DB.Query), strategy search (DB.Search over
// JSON-installed strategies), BM25 document search (DB.LoadDocs /
// DB.SearchDocs), plan inspection (DB.Explain, DB.ToSQL) and statistics
// (DB.Stats) round out the surface; see api.txt for the pinned listing.
// examples/quickstart is the canonical tour.
//
// # Migration from the internal call patterns
//
// Earlier revisions wired internal packages together by hand. The facade
// replaces those shapes one for one:
//
//	catalog.New + triple.NewStore + engine.NewCtx   -> irdb.Open(opts...)
//	ctx.Parallelism = n                             -> irdb.WithParallelism(n)
//	cat.Cache().SetMaxBytes(n)                      -> irdb.WithCacheBytes(n)
//	server admission semaphore                      -> irdb.WithMaxInFlight(n)
//	store.Load(triples)                             -> db.LoadTriples / db.LoadTriplesTSV
//	spinql.Eval(src, env, ctx)                      -> db.Query(ctx, src)
//	spinql.Parse + Compile per request              -> db.Prepare(src); stmt.Query(ctx, params...)
//	strategy.FromJSON + Compile + engine.NewTopN    -> db.InstallStrategy(json); db.Search(ctx, name, q, k)
//	ir.NewSearcher(ctx, docsPlan, params).Search    -> db.LoadDocs(docs); db.SearchDocs(ctx, q, k)
//	spinql.Explain / pra.ToSQL                      -> db.Explain / db.ToSQL
//
// At the engine layer, engine.Ctx.Exec and engine.Node.Execute now take
// a context.Context first; catalog.Cache.GetOrCompute(Aux) does too, and
// a waiter whose context is cancelled detaches from a single-flight
// computation without killing it for everyone else.
//
// # Execution model
//
// The engine executes every operator stage in parallel — independent
// subtrees fan out over a worker pool, hot per-row loops split into
// morsels, and materialization itself is morsel-parallel: output columns
// are pre-sized and written at offset, TopN and full Sort k-way-merge
// bounded per-run selections, the join build fills partitioned
// open-addressing tables, grouping deduplicates per morsel before a
// re-rank, and aggregation folds per-chunk partial accumulators in a
// fixed merge order — while guaranteeing results bit-identical to serial
// execution. String data is dictionary-encoded end-to-end
// (vector.DictStrings), so hashes, comparisons, sorts, group-bys and
// joins over interned columns run on fixed-width codes. The shared
// materialization cache single-flights concurrent misses so one VM's
// worth of traffic (the paper's 150k requests/day deployment) rebuilds
// each on-demand cache table once, not once per concurrent request.
//
// Cancellation is part of the execution contract: morsel loops and the
// k-way merges check the context at chunk boundaries, the join probe and
// grouping loops every few thousand rows, and a cancelled query returns
// context.Canceled promptly with nothing partial returned or cached. The
// cancellation suite in internal/engine and internal/catalog holds this
// in place; the serial-vs-parallel and prepared-vs-adhoc equivalence
// suites pin the bit-identity guarantees.
//
// Failures are contained the same way: a panic in any engine goroutine
// fails only that query, as a typed *PanicError (AsPanicError) carrying
// the operator label and stack, with nothing cached and the process
// intact. Snapshots (SaveSnapshot/LoadSnapshot) are durable — written
// to a temp file with per-section checksums, fsynced, atomically
// renamed — and a damaged file is refused with ErrCorruptSnapshot
// before any catalog state changes. Under load the facade can bound
// admission waits (WithAdmissionWait → ErrOverloaded) and the HTTP
// server sheds with 503 + Retry-After, drains on Shutdown, and reports
// a faults ledger under /stats. The fault-injection suite
// (go test -tags faultinject) drives every one of these paths, crash
// mid-snapshot-write included.
//
// # Enforced invariants
//
// The contracts above — panic containment at every spawn site,
// bit-deterministic iteration, context hygiene, budget-charged
// allocation, wrap-safe error matching, registry-backed fault sites —
// are machine-checked by irdb-lint, a go/analysis-style suite built on
// the stdlib (internal/lint, cmd/irdb-lint). Contributors run it as
//
//	go run ./cmd/irdb-lint ./...
//
// or through go vet -vettool; CI runs both, plus each analyzer's
// `// want`-annotated fixtures, and the tree must come up with zero
// findings. A legitimate exception is excused inline with
// //lint:allow <analyzer> <reason> — there is no suppression file. See
// internal/engine/README.md, "Enforced invariants", for the analyzer →
// contract table.
//
// The root package also holds the per-experiment benchmarks
// (bench_test.go) and the BenchmarkPreparedQuery / BenchmarkAdhocQuery
// pair demonstrating the eliminated re-parse/re-compile cost; the
// implementation lives under internal/ with runnable entry points under
// cmd/ and examples/.
package irdb
