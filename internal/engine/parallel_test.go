package engine

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"irdb/internal/catalog"
	"irdb/internal/expr"
	"irdb/internal/relation"
	"irdb/internal/vector"
)

// randRel builds a randomized relation with an int key column "a" (domain
// [0, keyDomain)), a low-cardinality string column "b", a float column "x",
// and random probabilities — enough variety to exercise every operator's
// key matching, grouping and probability arithmetic. Sizes above 2*minMorsel
// force real morsel splitting at Parallelism > 1.
func randRel(r *rand.Rand, n, keyDomain int) *relation.Relation {
	a := make([]int64, n)
	b := make([]string, n)
	x := make([]float64, n)
	p := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = int64(r.Intn(keyDomain))
		b[i] = fmt.Sprintf("k%d", r.Intn(17))
		x[i] = r.Float64() * 100
		p[i] = r.Float64()
	}
	return relation.MustFromColumns([]relation.Column{
		{Name: "a", Vec: vector.FromInt64s(a)},
		{Name: "b", Vec: vector.FromStrings(b)},
		{Name: "x", Vec: vector.FromFloat64s(x)},
	}, p)
}

// subsetWithNoise returns a relation sharing some of src's rows (so
// Subtract and Unite find genuine matches) mixed with fresh random rows.
func subsetWithNoise(r *rand.Rand, src *relation.Relation, keep, noise int) *relation.Relation {
	sel := make([]int, keep)
	for i := range sel {
		sel[i] = r.Intn(src.NumRows())
	}
	out := src.Gather(sel)
	p := make([]float64, out.NumRows())
	for i := range p {
		p[i] = r.Float64()
	}
	out.SetProb(p)
	joined, err := concatAll(context.Background(), NewCtx(nil), []*relation.Relation{out, randRel(r, noise, 64)})
	if err != nil {
		panic(err)
	}
	return joined
}

// ctxAt returns a fresh context over fresh copies of the given tables, so
// runs at different parallelism levels share no cache state.
func ctxAt(par int, tables map[string]*relation.Relation) *Ctx {
	cat := catalog.New(0)
	for name, rel := range tables {
		cat.Put(name, rel)
	}
	ctx := NewCtx(cat)
	ctx.Parallelism = par
	return ctx
}

// mustEqualRel asserts two relations are identical: schema, row order, all
// cell values, and bit-identical probabilities.
func mustEqualRel(t *testing.T, want, got *relation.Relation, label string) {
	t.Helper()
	if want.NumRows() != got.NumRows() {
		t.Fatalf("%s: rows = %d, want %d", label, got.NumRows(), want.NumRows())
	}
	if want.NumCols() != got.NumCols() {
		t.Fatalf("%s: cols = %d, want %d", label, got.NumCols(), want.NumCols())
	}
	for c := 0; c < want.NumCols(); c++ {
		wc, gc := want.Col(c), got.Col(c)
		if wc.Name != gc.Name {
			t.Fatalf("%s: column %d name = %q, want %q", label, c, gc.Name, wc.Name)
		}
		if wc.Vec.Kind() != gc.Vec.Kind() {
			t.Fatalf("%s: column %q kind = %v, want %v", label, wc.Name, gc.Vec.Kind(), wc.Vec.Kind())
		}
	}
	wp, gp := want.Prob(), got.Prob()
	for i := 0; i < want.NumRows(); i++ {
		for c := 0; c < want.NumCols(); c++ {
			if !want.Col(c).Vec.EqualAt(i, got.Col(c).Vec, i) {
				t.Fatalf("%s: row %d column %q: %s != %s",
					label, i, want.Col(c).Name, got.Col(c).Vec.Format(i), want.Col(c).Vec.Format(i))
			}
		}
		if wp[i] != gp[i] {
			t.Fatalf("%s: row %d probability %v != %v", label, i, gp[i], wp[i])
		}
	}
}

// TestSerialParallelEquivalence is the property suite of this PR: every
// operator, run at Parallelism 1, 2 and 8 over the same randomized inputs,
// must produce identical rows, column order and probabilities.
func TestSerialParallelEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	left := randRel(r, 9000, 3000)
	right := randRel(r, 7000, 3000)
	overlap := subsetWithNoise(r, left, 4000, 3000)
	tables := map[string]*relation.Relation{
		"L": left, "R": right, "O": overlap,
	}
	scanL := NewScan("L")
	scanR := NewScan("R")
	scanO := NewScan("O")
	pred := expr.Or{
		L: expr.Cmp{Op: expr.Lt, L: expr.Column("a"), R: expr.Int(700)},
		R: expr.Cmp{Op: expr.Eq, L: expr.Column("b"), R: expr.Str("k3")},
	}

	cases := []struct {
		name string
		plan Node
	}{
		{"join-independent", NewHashJoin(scanL, scanR, []string{"a"}, []string{"a"}, JoinIndependent)},
		{"join-left", NewHashJoin(scanL, scanR, []string{"a"}, []string{"a"}, JoinLeft)},
		{"join-right", NewHashJoin(scanL, scanR, []string{"a"}, []string{"a"}, JoinRight)},
		{"join-positional-multikey", NewHashJoinPos(scanL, scanO, []int{0, 1}, []int{0, 1}, JoinIndependent)},
		{"join-materialized-build", NewHashJoin(scanL, NewMaterialize(NewSelect(scanR, pred)),
			[]string{"a"}, []string{"a"}, JoinIndependent)},
		{"union", NewUnion(scanL, scanO)},
		{"concat", NewConcat(scanL, scanO, NewSelect(scanR, pred), scanR)},
		{"unite-independent", NewUnite(scanL, scanO, GroupIndependent)},
		{"unite-disjoint", NewUnite(scanL, scanO, GroupDisjoint)},
		{"unite-max", NewUnite(scanL, scanO, GroupMax)},
		{"subtract-prob", NewSubtract(scanL, scanO, false)},
		{"subtract-boolean", NewSubtract(scanL, scanO, true)},
		{"select", NewSelect(scanL, pred)},
		{"project", NewProject(scanL, ProjCol{Name: "b", E: expr.Column("b")},
			ProjCol{Name: "x2", E: expr.Arith{Op: expr.Mul, L: expr.Column("x"), R: expr.Float(2)}})},
		{"extend", NewExtend(scanL, "y", expr.Arith{Op: expr.Add, L: expr.Column("x"), R: expr.Float(1)})},
		{"sort", NewSort(scanL, SortSpec{Col: "b"}, SortSpec{Col: "x", Desc: true})},
		{"sort-by-prob", NewSort(scanL, SortSpec{Col: "", Desc: true})},
		{"topn", NewTopN(scanL, 100, SortSpec{Col: "", Desc: true}, SortSpec{Col: "a"})},
		{"topn-dups", NewTopN(scanL, 500, SortSpec{Col: "b"}, SortSpec{Col: "", Desc: true})},
		{"topn-large-n", NewTopN(scanL, 8000, SortSpec{Col: "x", Desc: true})},
		{"topn-over-input", NewTopN(scanL, 20000, SortSpec{Col: "a"}, SortSpec{Col: "b", Desc: true})},
		{"limit", NewLimit(scanL, 123)},
		{"rename", NewRename(scanL, "c1", "c2", "c3")},
		{"aggregate", NewAggregate(scanL, []string{"b"}, []AggSpec{
			{Op: CountAll, As: "n"},
			{Op: Sum, Col: "x", As: "sx"},
			{Op: Avg, Col: "x", As: "ax"},
			{Op: Min, Col: "a", As: "mina"},
			{Op: Max, Col: "a", As: "maxa"},
			{Op: SumProb, As: "sp"},
			{Op: MaxProb, As: "mp"},
		}, GroupDisjoint)},
		{"aggregate-independent", NewAggregate(scanL, []string{"b"}, []AggSpec{{Op: CountAll, As: "n"}}, GroupIndependent)},
		{"aggregate-high-cardinality", NewAggregate(scanL, []string{"a"}, []AggSpec{
			{Op: CountAll, As: "n"}, {Op: SumProb, As: "sp"}}, GroupDisjoint)},
		{"aggregate-multi-key", NewAggregate(scanL, []string{"b", "a"}, []AggSpec{{Op: Max, Col: "x", As: "mx"}}, GroupMax)},
		{"aggregate-sumraw", NewAggregate(scanL, []string{"b"}, []AggSpec{{Op: Count, Col: "x", As: "n"}}, GroupSumRaw)},
		{"distinct", NewDistinct(NewProject(scanL, ByName("b")...), GroupIndependent)},
		{"rownumber", NewRowNumber(scanL, "rowid")},
		{"scaleprob", NewScaleProb(scanL, 0.25)},
		{"probfromcol", NewProbFromCol(scanL, "x", true, true)},
		{"probtocol", NewProbToCol(scanL, "score")},
		{"normalize", NewNormalize(scanL, []int{1}, NormSum)},
		{"normalize-max-global", NewNormalize(scanL, nil, NormMax)},
		{"composite", NewTopN(
			NewUnite(
				NewScaleProb(NewHashJoin(NewSelect(scanL, pred), NewMaterialize(scanR),
					[]string{"a"}, []string{"a"}, JoinIndependent), 0.7),
				NewScaleProb(NewHashJoinPos(scanO, scanL, []int{0}, []int{0}, JoinLeft), 0.3),
				GroupIndependent),
			200, SortSpec{Col: "", Desc: true}, SortSpec{Col: "a"})},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var want *relation.Relation
			for _, par := range []int{1, 2, 8} {
				got, err := ctxAt(par, tables).Exec(context.Background(), tc.plan)
				if err != nil {
					t.Fatalf("parallelism %d: %v", par, err)
				}
				if par == 1 {
					want = got
					if got.NumRows() == 0 {
						t.Fatalf("degenerate case: serial run produced no rows")
					}
					continue
				}
				mustEqualRel(t, want, got, fmt.Sprintf("parallelism %d", par))
			}
		})
	}
}

// TestAggregationChunkedEquivalence runs the accumulating operators over
// an input large enough to split into multiple aggregation chunks
// (> 2*aggChunk rows), so the per-chunk partial accumulators and their
// fixed-order merge — not the single-chunk serial fallback — are what is
// being compared across parallelism 1, 2 and 8.
func TestAggregationChunkedEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	rows := 2*aggChunk + 4321
	if len(aggRanges(rows, 300)) < 2 {
		t.Fatalf("test input does not split into chunks; aggRanges gave %v", aggRanges(rows, 300))
	}
	tables := map[string]*relation.Relation{"B": randRel(r, rows, 300)}
	scanB := NewScan("B")
	allAggs := []AggSpec{
		{Op: CountAll, As: "n"},
		{Op: Count, Col: "x", As: "cx"},
		{Op: Sum, Col: "x", As: "sx"},
		{Op: Sum, Col: "a", As: "sa"},
		{Op: Avg, Col: "x", As: "ax"},
		{Op: Min, Col: "b", As: "minb"},
		{Op: Max, Col: "b", As: "maxb"},
		{Op: Min, Col: "x", As: "minx"},
		{Op: Max, Col: "x", As: "maxx"},
		{Op: SumProb, As: "sp"},
		{Op: MaxProb, As: "mp"},
	}
	cases := []struct {
		name string
		plan Node
	}{
		{"agg-disjoint", NewAggregate(scanB, []string{"b"}, allAggs, GroupDisjoint)},
		{"agg-independent", NewAggregate(scanB, []string{"b"}, allAggs, GroupIndependent)},
		{"agg-max", NewAggregate(scanB, []string{"b"}, allAggs, GroupMax)},
		{"agg-sumraw-global", NewAggregate(scanB, nil, allAggs, GroupSumRaw)},
		{"agg-high-cardinality", NewAggregate(scanB, []string{"a"}, []AggSpec{
			{Op: Sum, Col: "x", As: "sx"}, {Op: SumProb, As: "sp"}}, GroupIndependent)},
		{"distinct", NewDistinct(NewProject(scanB, ByName("b")...), GroupDisjoint)},
		{"normalize-grouped", NewNormalize(scanB, []int{1}, NormSum)},
		{"normalize-grouped-max", NewNormalize(scanB, []int{1}, NormMax)},
		{"normalize-global", NewNormalize(scanB, nil, NormSum)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var want *relation.Relation
			for _, par := range []int{1, 2, 8} {
				got, err := ctxAt(par, tables).Exec(context.Background(), tc.plan)
				if err != nil {
					t.Fatalf("parallelism %d: %v", par, err)
				}
				if par == 1 {
					want = got
					if got.NumRows() == 0 {
						t.Fatalf("degenerate case: serial run produced no rows")
					}
					continue
				}
				mustEqualRel(t, want, got, fmt.Sprintf("parallelism %d", par))
			}
		})
	}
}

// TestEquivalenceUnderCacheAll re-runs a composite plan with every
// intermediate cached, twice per context, at each parallelism level: the
// cold run, the hot (all-hits) run and the serial baseline must agree.
func TestEquivalenceUnderCacheAll(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	tables := map[string]*relation.Relation{
		"L": randRel(r, 6000, 500),
		"R": randRel(r, 5000, 500),
	}
	plan := NewTopN(
		NewHashJoin(NewScan("L"), NewScan("R"), []string{"a", "b"}, []string{"a", "b"}, JoinIndependent),
		300, SortSpec{Col: "", Desc: true}, SortSpec{Col: "a"})
	var want *relation.Relation
	for _, par := range []int{1, 2, 8} {
		ctx := ctxAt(par, tables)
		ctx.CacheAll = true
		cold, err := ctx.Exec(context.Background(), plan)
		if err != nil {
			t.Fatalf("parallelism %d cold: %v", par, err)
		}
		hot, err := ctx.Exec(context.Background(), plan)
		if err != nil {
			t.Fatalf("parallelism %d hot: %v", par, err)
		}
		mustEqualRel(t, cold, hot, fmt.Sprintf("parallelism %d hot-vs-cold", par))
		if want == nil {
			want = cold
			continue
		}
		mustEqualRel(t, want, cold, fmt.Sprintf("parallelism %d vs serial", par))
	}
}

// slowNode wraps a child and sleeps before executing, widening the window
// in which concurrent executions of the same fingerprint can stampede.
type slowNode struct {
	Child Node
	ID    string
	Delay time.Duration
}

func (s *slowNode) Execute(c context.Context, ctx *Ctx) (*relation.Relation, error) {
	time.Sleep(s.Delay)
	return ctx.Exec(context.Background(), s.Child)
}
func (s *slowNode) Fingerprint() string { return "slow(" + s.ID + ")(" + s.Child.Fingerprint() + ")" }
func (s *slowNode) Children() []Node    { return []Node{s.Child} }
func (s *slowNode) Label() string       { return "Slow " + s.ID }

// TestSingleFlightNodeExecs is the cache-stampede regression test: many
// goroutines executing the same Materialize'd plan against a cold cache
// must run the underlying subtree exactly once.
func TestSingleFlightNodeExecs(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	tables := map[string]*relation.Relation{"L": randRel(r, 4000, 100)}
	ctx := ctxAt(8, tables)
	plan := NewMaterialize(&slowNode{
		Child: NewSelect(NewScan("L"), expr.Cmp{Op: expr.Lt, L: expr.Column("a"), R: expr.Int(50)}),
		ID:    "stampede",
		Delay: 20 * time.Millisecond,
	})

	const goroutines = 16
	var wg sync.WaitGroup
	rels := make([]*relation.Relation, goroutines)
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rels[g], errs[g] = ctx.Exec(context.Background(), plan)
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	// One slowNode exec + one Select exec + one Scan exec: the subtree ran
	// exactly once despite 16 concurrent cold requests.
	if got := ctx.NodeExecs(); got != 3 {
		t.Errorf("NodeExecs = %d, want 3 (single flight)", got)
	}
	if hits := ctx.CacheHits(); hits != goroutines-1 {
		t.Errorf("CacheHits = %d, want %d (every other goroutine served from the flight or cache)",
			hits, goroutines-1)
	}
	for g := 1; g < goroutines; g++ {
		if rels[g] != rels[0] {
			mustEqualRel(t, rels[0], rels[g], fmt.Sprintf("goroutine %d", g))
		}
	}
}

// TestSingleFlightErrorNotCached: a failing computation must propagate its
// error to every waiter and must not leave a poisoned cache entry.
func TestSingleFlightErrorNotCached(t *testing.T) {
	ctx := ctxAt(4, map[string]*relation.Relation{})
	bad := NewMaterialize(&slowNode{Child: NewScan("missing"), ID: "err", Delay: 5 * time.Millisecond})
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := range errs {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_, errs[g] = ctx.Exec(context.Background(), bad)
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err == nil {
			t.Fatalf("goroutine %d: want error", g)
		}
	}
	if n := ctx.Cat.Cache().Len(); n != 0 {
		t.Errorf("cache holds %d entries after failed flights, want 0", n)
	}
	// The table appearing later must make the plan succeed (no poisoning).
	ctx.Cat.Put("missing", relation.MustFromColumns(
		[]relation.Column{{Name: "v", Vec: vector.FromInt64s([]int64{1})}}, nil))
	if _, err := ctx.Exec(context.Background(), bad); err != nil {
		t.Fatalf("after table appears: %v", err)
	}
}

// TestNestedMaterializeNoDeadlock guards the Materialize-unwrap in Exec:
// Materialize shares its child's fingerprint, so without unwrapping, the
// single-flight leader would wait on itself.
func TestNestedMaterializeNoDeadlock(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	tables := map[string]*relation.Relation{"L": randRel(r, 100, 10)}
	ctx := ctxAt(4, tables)
	ctx.CacheAll = true // every node cacheable: Materialize and child share a key
	plan := NewMaterialize(NewMaterialize(NewSelect(NewScan("L"),
		expr.Cmp{Op: expr.Lt, L: expr.Column("a"), R: expr.Int(5)})))
	done := make(chan error, 1)
	go func() {
		_, err := ctx.Exec(context.Background(), plan)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("nested Materialize deadlocked")
	}
}

// TestConcatErrors covers Concat's error paths.
func TestConcatErrors(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	tables := map[string]*relation.Relation{
		"L": randRel(r, 50, 10),
		"N": relation.MustFromColumns([]relation.Column{
			{Name: "only", Vec: vector.FromInt64s([]int64{1, 2})}}, nil),
	}
	ctx := ctxAt(4, tables)
	if _, err := ctx.Exec(context.Background(), NewConcat()); err == nil {
		t.Error("empty concat should fail")
	}
	if _, err := ctx.Exec(context.Background(), NewConcat(NewScan("L"), NewScan("N"))); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := ctx.Exec(context.Background(), NewConcat(NewScan("L"), NewScan("nope"), NewScan("L"))); err == nil {
		t.Error("failing child should fail the concat")
	}
	one, err := ctx.Exec(context.Background(), NewConcat(NewScan("L")))
	if err != nil {
		t.Fatal(err)
	}
	if one.NumRows() != 50 {
		t.Errorf("single-input concat rows = %d, want 50", one.NumRows())
	}
}

// TestParallelRangesCoverage checks the morsel helpers partition exactly.
func TestParallelRangesCoverage(t *testing.T) {
	for _, par := range []int{1, 2, 8} {
		for _, n := range []int{0, 1, minMorsel, 2 * minMorsel, 2*minMorsel + 1, 100000} {
			ctx := &Ctx{Parallelism: par}
			var mu sync.Mutex
			seen := make([]bool, n)
			ctx.parallelRanges(context.Background(), n, func(lo, hi int) {
				mu.Lock()
				defer mu.Unlock()
				for i := lo; i < hi; i++ {
					if seen[i] {
						t.Fatalf("par=%d n=%d: row %d visited twice", par, n, i)
					}
					seen[i] = true
				}
			})
			for i, ok := range seen {
				if !ok {
					t.Fatalf("par=%d n=%d: row %d not visited", par, n, i)
				}
			}
			ranges := ctx.morselRanges(n)
			last := 0
			for _, rg := range ranges {
				if rg[0] != last {
					t.Fatalf("par=%d n=%d: gap before %d", par, n, rg[0])
				}
				last = rg[1]
			}
			if last != n {
				t.Fatalf("par=%d n=%d: ranges end at %d", par, n, last)
			}
		}
	}
}

// TestMorselRangesBoundedUnits: chunked loops decompose into units capped
// at morselUnitRows regardless of parallelism — the sortRunRows trick
// generalized to gather/hash loops — floored at minMorsel, with tiny
// inputs staying serial.
func TestMorselRangesBoundedUnits(t *testing.T) {
	cases := []struct {
		par, n    int
		wantCount int
	}{
		{1, 10 * morselUnitRows, 10}, // serial, still 10 cancellation units
		{8, 8 * morselUnitRows, 8},   // one unit per worker
		{8, 16 * morselUnitRows, 16}, // per-worker share above cap: capped
		{2, 2*minMorsel - 1, 1},      // tiny input stays serial
		{8, 4 * minMorsel, 4},        // floored at minMorsel
		{1, morselUnitRows, 1},       // exactly one unit
	}
	for _, tc := range cases {
		ctx := &Ctx{Parallelism: tc.par}
		ranges := ctx.morselRanges(tc.n)
		if len(ranges) != tc.wantCount {
			t.Errorf("par=%d n=%d: %d ranges, want %d", tc.par, tc.n, len(ranges), tc.wantCount)
		}
		for _, r := range ranges {
			if sz := r[1] - r[0]; sz > morselUnitRows {
				t.Errorf("par=%d n=%d: unit of %d rows exceeds morselUnitRows", tc.par, tc.n, sz)
			}
		}
	}
}

// TestChunkedLoopCancelsBetweenUnits: at parallelism 1 a chunked loop over
// many units stops at the first unit boundary after cancellation instead
// of finishing the whole input inline.
func TestChunkedLoopCancelsBetweenUnits(t *testing.T) {
	ctx := &Ctx{Parallelism: 1}
	n := 10 * morselUnitRows
	if got := len(ctx.morselRanges(n)); got < 2 {
		t.Fatalf("want multiple units at parallelism 1, got %d", got)
	}
	c, cancel := context.WithCancel(context.Background())
	units := 0
	ctx.parallelRanges(c, n, func(lo, hi int) {
		units++
		cancel() // cancelled mid-first-unit; no further unit may start
	})
	if units != 1 {
		t.Errorf("ran %d units after cancellation, want 1", units)
	}
}
