// Package pra implements the Probabilistic Relational Algebra of section
// 2.3 — the algebra of Fuhr and Rölleke (paper reference [8]) extended
// with the relational Bayes of Roelleke et al. (reference [12]) — as a
// typed plan layer compiling onto the relational engine.
//
// PRA plans are positional: columns are addressed $1..$n as in SpinQL.
// Every node knows its output schema statically, so arity errors surface
// at plan-construction time rather than mid-query. Each relational
// operator "defines how to compute probability columns"; the assumptions
// (independent, disjoint, ...) select the combination rule.
package pra

import (
	"fmt"
	"strings"

	"irdb/internal/engine"
	"irdb/internal/expr"
)

// Assumption qualifies how an operator combines the probabilities of the
// tuples it merges.
type Assumption int

const (
	// None performs no merging: bag semantics (the plain PROJECT of the
	// paper's SpinQL example, which translates to SQL without DISTINCT).
	None Assumption = iota
	// Independent treats merged tuples as independent events
	// (noisy-or for projection/union, product for join).
	Independent
	// Disjoint treats merged tuples as mutually exclusive events
	// (probability sum, clamped at 1).
	Disjoint
	// Max keeps the strongest supporting event.
	Max
	// SumRaw accumulates probabilities without clamping; not a
	// probability in general, used to sum retrieval-score contributions.
	SumRaw
)

func (a Assumption) String() string {
	switch a {
	case None:
		return ""
	case Independent:
		return "INDEPENDENT"
	case Disjoint:
		return "DISJOINT"
	case Max:
		return "MAX"
	case SumRaw:
		return "SUM"
	}
	return "?"
}

func (a Assumption) groupProb() engine.GroupProb {
	switch a {
	case Disjoint:
		return engine.GroupDisjoint
	case Max:
		return engine.GroupMax
	case SumRaw:
		return engine.GroupSumRaw
	default:
		return engine.GroupIndependent
	}
}

// Node is a PRA plan node.
type Node interface {
	// Schema returns the output column names, in order.
	Schema() []string
	// Compile lowers the node onto the engine.
	Compile() (engine.Node, error)
	// String renders the plan in SpinQL-like concrete syntax.
	String() string
}

// ---------------------------------------------------------------------------
// Base

// Base wraps an engine plan (usually a table scan) as a PRA leaf with a
// declared schema.
type Base struct {
	Name string
	Plan engine.Node
	Cols []string
}

// NewBase declares a PRA leaf over an engine plan.
func NewBase(name string, plan engine.Node, cols ...string) *Base {
	return &Base{Name: name, Plan: plan, Cols: cols}
}

// Schema implements Node.
func (b *Base) Schema() []string { return b.Cols }

// Compile implements Node.
func (b *Base) Compile() (engine.Node, error) {
	if b.Plan == nil {
		return nil, fmt.Errorf("pra: base %q has no plan", b.Name)
	}
	return b.Plan, nil
}

// String implements Node.
func (b *Base) String() string { return b.Name }

// ---------------------------------------------------------------------------
// Select

// Select filters tuples by a condition over positional columns;
// probabilities pass through unchanged.
type Select struct {
	Child Node
	Cond  expr.Expr
}

// NewSelect filters child by cond (built from expr.ColumnAt references).
func NewSelect(child Node, cond expr.Expr) *Select { return &Select{Child: child, Cond: cond} }

// Schema implements Node.
func (s *Select) Schema() []string { return s.Child.Schema() }

// Compile implements Node.
func (s *Select) Compile() (engine.Node, error) {
	child, err := s.Child.Compile()
	if err != nil {
		return nil, err
	}
	if err := checkPositions(s.Cond, len(s.Child.Schema())); err != nil {
		return nil, fmt.Errorf("pra: SELECT %s: %w", s.Cond.String(), err)
	}
	return engine.NewSelect(child, s.Cond), nil
}

// String implements Node.
func (s *Select) String() string {
	return fmt.Sprintf("SELECT [%s] (%s)", s.Cond.String(), s.Child.String())
}

// checkPositions validates that every $n reference in e is within arity.
func checkPositions(e expr.Expr, arity int) error {
	switch x := e.(type) {
	case expr.ColIdx:
		if x.Idx < 1 || x.Idx > arity {
			return fmt.Errorf("$%d out of range (input has %d columns)", x.Idx, arity)
		}
	case expr.Cmp:
		if err := checkPositions(x.L, arity); err != nil {
			return err
		}
		return checkPositions(x.R, arity)
	case expr.And:
		if err := checkPositions(x.L, arity); err != nil {
			return err
		}
		return checkPositions(x.R, arity)
	case expr.Or:
		if err := checkPositions(x.L, arity); err != nil {
			return err
		}
		return checkPositions(x.R, arity)
	case expr.Not:
		return checkPositions(x.E, arity)
	case expr.Param:
		// Parameter placeholders reference no columns; they are bound to
		// literals before execution.
		return nil
	case expr.Arith:
		if err := checkPositions(x.L, arity); err != nil {
			return err
		}
		return checkPositions(x.R, arity)
	case expr.Call:
		for _, a := range x.Args {
			if err := checkPositions(a, arity); err != nil {
				return err
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Project

// Project keeps the given 1-based column positions. With Assumption None
// it is a bag projection (no duplicate elimination), matching the paper's
// SpinQL-to-SQL example; any other assumption deduplicates and combines
// the probabilities of collapsed tuples under that assumption.
type Project struct {
	Child      Node
	Cols       []int
	Assumption Assumption
}

// NewProject projects child onto 1-based positions cols.
func NewProject(child Node, assumption Assumption, cols ...int) *Project {
	return &Project{Child: child, Cols: cols, Assumption: assumption}
}

// Schema implements Node.
func (p *Project) Schema() []string {
	in := p.Child.Schema()
	out := make([]string, len(p.Cols))
	for i, c := range p.Cols {
		if c >= 1 && c <= len(in) {
			out[i] = in[c-1]
		} else {
			out[i] = fmt.Sprintf("$%d", c)
		}
	}
	return out
}

// Compile implements Node.
func (p *Project) Compile() (engine.Node, error) {
	child, err := p.Child.Compile()
	if err != nil {
		return nil, err
	}
	arity := len(p.Child.Schema())
	names := p.Schema()
	seen := map[string]int{}
	cols := make([]engine.ProjCol, len(p.Cols))
	for i, c := range p.Cols {
		if c < 1 || c > arity {
			return nil, fmt.Errorf("pra: PROJECT $%d out of range (input has %d columns)", c, arity)
		}
		name := names[i]
		seen[name]++
		if seen[name] > 1 {
			name = fmt.Sprintf("%s_%d", name, seen[name])
		}
		cols[i] = engine.ProjCol{Name: name, E: expr.ColumnAt(c)}
	}
	proj := engine.NewProject(child, cols...)
	if p.Assumption == None {
		return proj, nil
	}
	return engine.NewDistinct(proj, p.Assumption.groupProb()), nil
}

// String implements Node.
func (p *Project) String() string {
	refs := make([]string, len(p.Cols))
	for i, c := range p.Cols {
		refs[i] = fmt.Sprintf("$%d", c)
	}
	op := "PROJECT"
	if p.Assumption != None {
		op += " " + p.Assumption.String()
	}
	return fmt.Sprintf("%s [%s] (%s)", op, strings.Join(refs, ","), p.Child.String())
}
