package text

import (
	"sort"
	"strings"
)

// SynonymDict maps a term to its synonyms. The production strategy of
// section 3 uses "query expansion with synonyms and compound terms"; the
// E7 experiment exercises this code path.
type SynonymDict map[string][]string

// Expand returns the query terms plus their synonyms, deduplicated,
// preserving first-appearance order (original terms first).
func (d SynonymDict) Expand(terms []string) []string {
	seen := make(map[string]bool, len(terms)*2)
	var out []string
	add := func(t string) {
		if t != "" && !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	for _, t := range terms {
		add(t)
	}
	for _, t := range terms {
		for _, s := range d[t] {
			add(s)
		}
	}
	return out
}

// Terms returns the dictionary's keys in sorted order.
func (d SynonymDict) Terms() []string {
	out := make([]string, 0, len(d))
	for t := range d {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Compounds returns every adjacent pair of query terms joined by a
// separator — the "compound terms" half of the paper's query expansion.
// For the query [wooden train set] it yields [wooden_train train_set].
func Compounds(terms []string) []string {
	if len(terms) < 2 {
		return nil
	}
	out := make([]string, 0, len(terms)-1)
	for i := 0; i+1 < len(terms); i++ {
		out = append(out, terms[i]+"_"+terms[i+1])
	}
	return out
}

// CompoundVariants adds, for every compound occurrence in the raw text,
// the joined form as an extra token, letting compound query terms match.
// It is applied to documents when a strategy enables compound indexing.
func CompoundVariants(tokens []Token) []Token {
	if len(tokens) < 2 {
		return tokens
	}
	out := make([]Token, 0, 2*len(tokens)-1)
	for i, t := range tokens {
		out = append(out, t)
		if i+1 < len(tokens) {
			out = append(out, Token{Term: t.Term + "_" + tokens[i+1].Term, Pos: t.Pos})
		}
	}
	return out
}

// NormalizeQuery lower-cases and collapses whitespace in a raw query
// string, the minimal cleaning applied before tokenization.
func NormalizeQuery(q string) string {
	return strings.Join(strings.Fields(strings.ToLower(q)), " ")
}
