package stem

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRegistry(t *testing.T) {
	for _, name := range []string{"none", "s", "porter", "sb-english"} {
		s, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("Get(%q).Name() = %q", name, s.Name())
		}
	}
	if _, err := Get("sb-klingon"); err == nil {
		t.Error("Get of unknown stemmer should fail")
	}
	names := Names()
	if len(names) < 4 {
		t.Errorf("Names() = %v, want at least 4", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Errorf("Names() not sorted: %v", names)
		}
	}
}

func TestIdentity(t *testing.T) {
	s, _ := Get("none")
	for _, w := range []string{"running", "flies", ""} {
		if got := s.Stem(w); got != w {
			t.Errorf("identity(%q) = %q", w, got)
		}
	}
}

func TestSStemmer(t *testing.T) {
	s, _ := Get("s")
	cases := map[string]string{
		"ponies":  "pony",
		"dishes":  "dishe",
		"cats":    "cat",
		"glass":   "glass",
		"corpus":  "corpus",
		"basis":   "basis",
		"is":      "is",
		"toys":    "toy",
		"queries": "query",
	}
	for in, want := range cases {
		if got := s.Stem(in); got != want {
			t.Errorf("s(%q) = %q, want %q", in, got, want)
		}
	}
}

// Classic Porter vectors from the algorithm definition (Porter, 1980).
func TestPorterKnownVectors(t *testing.T) {
	s, _ := Get("porter")
	cases := map[string]string{
		"caresses":   "caress",
		"ponies":     "poni",
		"ties":       "ti",
		"caress":     "caress",
		"cats":       "cat",
		"feed":       "feed",
		"agreed":     "agre",
		"plastered":  "plaster",
		"bled":       "bled",
		"motoring":   "motor",
		"sing":       "sing",
		"conflated":  "conflat",
		"troubled":   "troubl",
		"sized":      "size",
		"hopping":    "hop",
		"tanned":     "tan",
		"falling":    "fall",
		"hissing":    "hiss",
		"fizzed":     "fizz",
		"failing":    "fail",
		"filing":     "file",
		"happy":      "happi",
		"sky":        "sky",
		"relational": "relat",
		"rational":   "ration",
		"digitizer":  "digit",
		"triplicate": "triplic",
		"formative":  "form",
		"formalize":  "formal",
		"hopeful":    "hope",
		"goodness":   "good",
		"revival":    "reviv",
		"allowance":  "allow",
		"inference":  "infer",
		"airliner":   "airlin",
		"adjustment": "adjust",
		"effective":  "effect",
		"probate":    "probat",
		"rate":       "rate",
		"cease":      "ceas",
		"controll":   "control",
		"roll":       "roll",
	}
	for in, want := range cases {
		if got := s.Stem(in); got != want {
			t.Errorf("porter(%q) = %q, want %q", in, got, want)
		}
	}
}

// Snowball English (Porter2) vectors derivable from the published
// algorithm description.
func TestEnglishKnownVectors(t *testing.T) {
	s, _ := Get("sb-english")
	cases := map[string]string{
		// exceptional forms
		"skis": "ski", "skies": "sky", "dying": "die", "lying": "lie",
		"tying": "tie", "idly": "idl", "gently": "gentl", "ugly": "ugli",
		"early": "earli", "only": "onli", "singly": "singl",
		"sky": "sky", "news": "news", "atlas": "atlas", "cosmos": "cosmos",
		"bias": "bias", "andes": "andes",
		// stop-after-1a forms
		"inning": "inning", "proceed": "proceed", "exceed": "exceed",
		"succeed": "succeed", "herring": "herring",
		// regular morphology
		"caresses":    "caress",
		"ties":        "tie",
		"cries":       "cri",
		"gaps":        "gap",
		"gas":         "gas",
		"kiwis":       "kiwi",
		"agreed":      "agre",
		"feed":        "feed",
		"hopping":     "hop",
		"hoping":      "hope",
		"falling":     "fall",
		"generously":  "generous",
		"relational":  "relat",
		"conditional": "condit",
		"consign":     "consign",
		"consigned":   "consign",
		"consigning":  "consign",
		"consignment": "consign",
		"beautiful":   "beauti",
		"cry":         "cri",
		"by":          "by",
		"say":         "say",
		"searching":   "search",
		"retrieval":   "retriev",
		"databases":   "databas",
	}
	for in, want := range cases {
		if got := s.Stem(in); got != want {
			t.Errorf("sb-english(%q) = %q, want %q", in, got, want)
		}
	}
}

// Stemming the toy-scenario vocabulary of the paper must conflate the
// morphological variants a product search needs.
func TestEnglishConflatesVariants(t *testing.T) {
	s, _ := Get("sb-english")
	groups := [][]string{
		{"toy", "toys"},
		{"book", "books"},
		{"description", "descriptions"},
		{"train", "trains", "training"},
		{"auction", "auctions"},
	}
	for _, g := range groups {
		stem0 := s.Stem(g[0])
		for _, w := range g[1:] {
			if got := s.Stem(w); got != stem0 {
				t.Errorf("stem(%q) = %q, want %q (conflated with %q)", w, got, stem0, g[0])
			}
		}
	}
}

// Properties that must hold for every registered stemmer: stems are never
// longer than input plus one letter (the "add e" rules), stemming is
// deterministic, and words of length <= 2 are untouched by the Snowball
// stemmers.
func TestStemmerProperties(t *testing.T) {
	for _, name := range []string{"s", "porter", "sb-english"} {
		s, _ := Get(name)
		f := func(raw string) bool {
			w := strings.ToLower(raw)
			// Restrict to ASCII letters; others pass through by contract.
			for i := 0; i < len(w); i++ {
				if w[i] < 'a' || w[i] > 'z' {
					return true
				}
			}
			got := s.Stem(w)
			if len(got) > len(w)+1 {
				return false
			}
			return s.Stem(w) == got // deterministic
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestEnglishShortWordsUntouched(t *testing.T) {
	s, _ := Get("sb-english")
	for _, w := range []string{"a", "is", "it", "go"} {
		if got := s.Stem(w); got != w {
			t.Errorf("sb-english(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestEnglishApostrophes(t *testing.T) {
	s, _ := Get("sb-english")
	if got := s.Stem("product's"); got != "product" {
		t.Errorf("stem(product's) = %q, want product", got)
	}
	if got := s.Stem("'cause"); got != s.Stem("cause") {
		t.Errorf("leading apostrophe not stripped: %q", got)
	}
}
