package catalog

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"irdb/internal/relation"
	"irdb/internal/vector"
)

func oneRowRel(v int64) *relation.Relation {
	return relation.MustFromColumns([]relation.Column{
		{Name: "v", Vec: vector.FromInt64s([]int64{v})}}, nil)
}

// TestGetOrComputeSingleFlight: concurrent misses on one key run the
// computation exactly once and all receive its result.
func TestGetOrComputeSingleFlight(t *testing.T) {
	c := NewCache(0)
	var computes atomic.Int64
	gate := make(chan struct{})

	const callers = 32
	var wg sync.WaitGroup
	rels := make([]*relation.Relation, callers)
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rel, _, err := c.GetOrCompute(context.Background(), "k", func(context.Context) (*relation.Relation, error) {
				computes.Add(1)
				<-gate // hold the flight open until every caller has piled in
				return oneRowRel(42), nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", g, err)
			}
			rels[g] = rel
		}(g)
	}
	// Let callers join, then release the leader. The sleep-free way: wait
	// until the cache records callers-1 shared joins or all are blocked.
	for {
		c.mu.Lock()
		joined := c.shared
		c.mu.Unlock()
		if joined == callers-1 || computes.Load() > 1 {
			break
		}
		time.Sleep(50 * time.Microsecond)
	}
	close(gate)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	for g := 1; g < callers; g++ {
		if rels[g] != rels[0] {
			t.Fatalf("caller %d got a different relation", g)
		}
	}
	st := c.Stats()
	if st.Shared != callers-1 {
		t.Errorf("Shared = %d, want %d", st.Shared, callers-1)
	}
	if st.Entries != 1 {
		t.Errorf("Entries = %d, want 1", st.Entries)
	}
	// Later callers hit the completed entry without computing.
	if _, hit, _ := c.GetOrCompute(context.Background(), "k", func(context.Context) (*relation.Relation, error) {
		t.Fatal("compute must not run on a warm key")
		return nil, nil
	}); !hit {
		t.Error("warm key reported as miss")
	}
}

// TestGetOrComputeError: errors reach every waiter and are never cached.
func TestGetOrComputeError(t *testing.T) {
	c := NewCache(0)
	boom := errors.New("boom")
	var computes atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, hit, err := c.GetOrCompute(context.Background(), "k", func(context.Context) (*relation.Relation, error) {
				computes.Add(1)
				return nil, boom
			})
			if !errors.Is(err, boom) {
				t.Errorf("err = %v, want boom", err)
			}
			if hit {
				t.Error("failed computation reported as hit")
			}
		}()
	}
	wg.Wait()
	if c.Len() != 0 {
		t.Errorf("cache holds %d entries after failures, want 0", c.Len())
	}
	// The key is not poisoned: a succeeding compute works.
	rel, _, err := c.GetOrCompute(context.Background(), "k", func(context.Context) (*relation.Relation, error) {
		return oneRowRel(1), nil
	})
	if err != nil || rel == nil {
		t.Fatalf("recovery compute: rel=%v err=%v", rel, err)
	}
}

// TestClearDuringFlight: a Clear racing an in-flight computation must not
// let the (possibly stale) result land in the post-Clear cache.
func TestClearDuringFlight(t *testing.T) {
	c := NewCache(0)
	entered := make(chan struct{})
	gate := make(chan struct{})
	done := make(chan *relation.Relation, 1)
	go func() {
		rel, _, _ := c.GetOrCompute(context.Background(), "k", func(context.Context) (*relation.Relation, error) {
			close(entered)
			<-gate
			return oneRowRel(7), nil
		})
		done <- rel
	}()
	<-entered
	c.Clear()
	close(gate)
	if rel := <-done; rel == nil || rel.NumRows() != 1 {
		t.Fatal("flight caller must still receive the computed relation")
	}
	if c.Len() != 0 {
		t.Errorf("stale flight result was cached across Clear (%d entries)", c.Len())
	}
	if _, ok := c.Get("k"); ok {
		t.Error("stale entry visible after Clear")
	}
}

// TestGetOrComputeAuxSingleFlight mirrors the relation path for auxiliary
// structures (join indexes).
func TestGetOrComputeAuxSingleFlight(t *testing.T) {
	c := NewCache(0)
	var computes atomic.Int64
	var wg sync.WaitGroup
	vals := make([]any, 16)
	for g := range vals {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v, _, err := c.GetOrComputeAux(context.Background(), "idx", func(context.Context) (any, error) {
				computes.Add(1)
				return &struct{ x int }{x: 9}, nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", g, err)
			}
			vals[g] = v
		}(g)
	}
	wg.Wait()
	if n := computes.Load(); n < 1 {
		t.Fatalf("compute ran %d times", n)
	}
	for g := 1; g < len(vals); g++ {
		if vals[g] != vals[0] {
			t.Fatalf("caller %d got a different aux value", g)
		}
	}
	if v, ok := c.GetAux("idx"); !ok || v != vals[0] {
		t.Error("aux entry not stored")
	}
	c.DropAux("idx")
	if _, ok := c.GetAux("idx"); ok {
		t.Error("DropAux left the entry")
	}
}

// TestCacheConcurrentHammer drives every public cache method from many
// goroutines at once; the -race detector is the assertion.
func TestCacheConcurrentHammer(t *testing.T) {
	c := NewCache(8) // small capacity: exercise eviction under load
	const goroutines = 16
	const iters = 300
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("k%d", (g+i)%12)
				switch i % 7 {
				case 0:
					c.Put(key, oneRowRel(int64(i)))
				case 1:
					c.Get(key)
				case 2:
					c.GetOrCompute(context.Background(), key, func(context.Context) (*relation.Relation, error) {
						return oneRowRel(int64(g)), nil
					})
				case 3:
					c.PutAux(key, i)
				case 4:
					c.GetAux(key)
				case 5:
					if i%63 == 5 {
						c.Clear()
					} else {
						c.GetOrComputeAux(context.Background(), key, func(context.Context) (any, error) { return g, nil })
					}
				case 6:
					c.Stats()
					c.Len()
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 8 {
		t.Errorf("capacity 8 exceeded: %d entries", c.Len())
	}
}
