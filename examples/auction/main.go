// Auction reproduces the real-world scenario of section 3: an online
// auction site where users search lots via the website's search bar. The
// Figure 3 strategy ranks lots by their own description mixed with the
// description of their containing auction; the production variant adds
// five parallel keyword-search branches plus query expansion.
//
// Run with: go run ./examples/auction [-lots 8000] [-query "..."]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"irdb/internal/catalog"
	"irdb/internal/engine"
	"irdb/internal/strategy"
	"irdb/internal/text"
	"irdb/internal/triple"
	"irdb/internal/workload"
)

func main() {
	var (
		lots  = flag.Int("lots", 8000, "number of lots (paper: 8 million)")
		query = flag.String("query", "", "keyword query (default: sampled from the vocabulary)")
	)
	flag.Parse()

	cfg := workload.DefaultAuctionConfig()
	cfg.Lots = *lots
	cfg.Auctions = *lots / 320 // the paper's lots-per-auction shape
	if cfg.Auctions < 1 {
		cfg.Auctions = 1
	}
	cfg.Sellers = cfg.Auctions * 2

	fmt.Printf("generating auction graph: %d lots, %d auctions, %d sellers…\n",
		cfg.Lots, cfg.Auctions, cfg.Sellers)
	graph := workload.AuctionGraph(cfg)
	cat := catalog.New(0)
	triple.NewStore(cat).Load(graph)
	ctx := engine.NewCtx(cat)
	fmt.Printf("loaded %d triples\n\n", len(graph))

	q := *query
	if q == "" {
		v := workload.NewVocabulary(cfg.VocabSize, cfg.Seed)
		q = strings.Join([]string{v.Word(12), v.Word(30), v.Word(55)}, " ")
	}
	fmt.Printf("query: %q\n\n", q)

	// --- Figure 3: two branches mixed 0.7 / 0.3.
	strat := strategy.Auction(0.7, 0.3)
	fmt.Printf("Figure 3 strategy (%d blocks): lots by own description (0.7) + auction description (0.3)\n",
		strat.NumBlocks())
	top := run(ctx, strat, &strategy.Compiler{Query: q})
	fmt.Println(top)

	// --- The production variant: 5 branches + synonym/compound expansion.
	synonyms := text.SynonymDict(workload.Synonyms(cfg.VocabSize, 200, 2, cfg.Seed))
	prod := strategy.Production()
	fmt.Printf("production strategy (%d blocks): + titles, sellers, expansion\n", prod.NumBlocks())
	topProd := run(ctx, prod, &strategy.Compiler{Query: q, Synonyms: synonyms})
	fmt.Println(topProd)

	// --- The paper's deployment regime: repeated hot requests.
	const reqs = 10
	start := time.Now()
	for i := 0; i < reqs; i++ {
		plan, err := strat.Compile(&strategy.Compiler{Query: q})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := ctx.Exec(engine.NewTopN(plan, 10,
			engine.SortSpec{Col: "", Desc: true}, engine.SortSpec{Col: triple.ColSubject})); err != nil {
			log.Fatal(err)
		}
	}
	perReq := time.Since(start) / reqs
	fmt.Printf("hot request latency: %s per request over %d requests\n", perReq.Round(time.Microsecond), reqs)
	fmt.Println(`paper: "about 150ms per request (hot database)" at 8M lots on one VM`)
}

func run(ctx *engine.Ctx, s *strategy.Strategy, c *strategy.Compiler) string {
	plan, err := s.Compile(c)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	rel, err := ctx.Exec(engine.NewTopN(plan, 5,
		engine.SortSpec{Col: "", Desc: true}, engine.SortSpec{Col: triple.ColSubject}))
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	var b strings.Builder
	fmt.Fprintf(&b, "top lots (first request, includes on-demand indexing, %s):\n",
		elapsed.Round(time.Millisecond))
	for i := 0; i < rel.NumRows(); i++ {
		fmt.Fprintf(&b, "  %d. %-10s p=%.4f\n", i+1, rel.Col(0).Vec.Format(i), rel.Prob()[i])
	}
	return b.String()
}
