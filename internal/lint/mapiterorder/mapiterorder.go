// Package mapiterorder enforces the engine's determinism rule from the
// README: results must be bit-identical at any parallelism, so
// result-producing code must never let Go's randomized map iteration
// order reach an output. In the packages that produce query results
// (engine, relation, vector) every `for ... range m` over a map is
// suspect unless the keys are sorted before use. One shape of "sorted
// before use" is decidable and common enough to recognize: the loop
// body only appends the bindings to a slice, and a later statement in
// the same block passes that slice to sort/slices. Anything else either
// gets refactored onto a deterministic structure or carries a
// //lint:allow mapiterorder <reason> annotation explaining why order
// cannot leak (pure counting, building another map, etc.).
package mapiterorder

import (
	"go/ast"
	"go/types"

	"irdb/internal/lint/analysis"
)

// Analyzer flags map iteration in result-producing packages.
var Analyzer = &analysis.Analyzer{
	Name: "mapiterorder",
	Doc: `report map iteration in result-producing engine code

Go randomizes map iteration order; any order-dependent use in
engine/relation/vector breaks the bit-determinism contract the
equivalence suites pin. Loops whose effect is provably order-independent
are annotated //lint:allow mapiterorder <reason> at the range statement.`,
	Run: run,
}

// scoped lists the real packages under the determinism contract.
var scoped = []string{
	"irdb/internal/engine",
	"irdb/internal/relation",
	"irdb/internal/vector",
}

func run(pass *analysis.Pass) error {
	path := pass.PkgPath()
	in := analysis.FixtureScoped(path, "mapiterorder")
	for _, s := range scoped {
		if path == s {
			in = true
		}
	}
	if !in {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			for i, stmt := range block.List {
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok || pass.InTestFile(rs.Pos()) {
					continue
				}
				t := pass.TypesInfo.TypeOf(rs.X)
				if t == nil {
					continue
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					continue
				}
				// `for range m` binds neither key nor value: the body runs
				// a deterministic number of times with no identity, so
				// order cannot leak.
				if rs.Key == nil && rs.Value == nil {
					continue
				}
				if blankOnly(rs) {
					continue
				}
				if collectThenSort(pass, rs, block.List[i+1:]) {
					continue
				}
				pass.Reportf(rs.Pos(), "map iteration order is nondeterministic; sort the keys before producing results, use a deterministic structure, or annotate the loop")
			}
			return true
		})
	}
	return nil
}

// collectThenSort recognizes the one decidable "sorted before use"
// shape: the loop body is exactly `s = append(s, <binding>...)` and a
// later statement in the same block sorts s via the sort or slices
// package. The slice's order dependence is laundered by the sort, so
// the iteration is deterministic in effect.
func collectThenSort(pass *analysis.Pass, rs *ast.RangeStmt, rest []ast.Stmt) bool {
	slice := appendTarget(pass, rs)
	if slice == nil {
		return false
	}
	for _, stmt := range rest {
		es, ok := stmt.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			continue
		}
		pn, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
		if !ok {
			continue
		}
		if p := pn.Imported().Path(); p != "sort" && p != "slices" {
			continue
		}
		if arg, ok := call.Args[0].(*ast.Ident); ok && pass.TypesInfo.Uses[arg] == slice {
			return true
		}
	}
	return false
}

// appendTarget returns the slice variable when the loop body is exactly
// one `s = append(s, args...)` whose appended values are the range
// bindings (possibly wrapped in calls), or nil.
func appendTarget(pass *analysis.Pass, rs *ast.RangeStmt) types.Object {
	if len(rs.Body.List) != 1 {
		return nil
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return nil
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return nil
	}
	if b, ok := pass.TypesInfo.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	first, ok := call.Args[0].(*ast.Ident)
	if !ok || first.Name != lhs.Name {
		return nil
	}
	obj := pass.TypesInfo.Uses[first]
	if obj == nil {
		return nil
	}
	if got := pass.TypesInfo.Defs[lhs]; got != nil && got != obj {
		return nil // := would make the accumulator loop-local
	}
	if u := pass.TypesInfo.Uses[lhs]; u != nil && u != obj {
		return nil
	}
	return obj
}

// blankOnly reports whether the range binds only blank identifiers
// (`for _, _ = range m`), which, like the bare form, exposes no order.
func blankOnly(rs *ast.RangeStmt) bool {
	isBlank := func(e ast.Expr) bool {
		if e == nil {
			return true
		}
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "_"
	}
	return isBlank(rs.Key) && isBlank(rs.Value)
}
