// Recommendation demonstrates the third complex search task motivating
// the paper's introduction (reference [3]: "bridging memory-based
// collaborative filtering and text retrieval"): recommend items to a user
// from the likes graph, treating co-preference as probabilistic evidence.
//
// The whole recommender is four relational operators over the triple
// store — no dedicated recommendation engine:
//
//  1. users who like what the target user likes   (traverse "likes" back)
//  2. what those users like                       (traverse "likes" fwd)
//  3. combine evidence across neighbours          (noisy-or dedup)
//  4. drop items the user already knows           (probabilistic SUBTRACT)
//
// Confidence-scored likes (e.g. inferred from clicks rather than explicit
// ratings) simply arrive as tuple probabilities and propagate.
//
// Run with: go run ./examples/recommendation
package main

import (
	"fmt"
	"log"

	"irdb/internal/catalog"
	"irdb/internal/engine"
	"irdb/internal/expr"
	"irdb/internal/triple"
)

func main() {
	cat := catalog.New(0)
	store := triple.NewStore(cat)
	store.Load(likesGraph())
	ctx := engine.NewCtx(cat)

	for _, user := range []string{"ann", "bob"} {
		recs, err := ctx.Exec(recommendPlan(user, 3))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("recommendations for %s:\n", user)
		for i := 0; i < recs.NumRows(); i++ {
			fmt.Printf("  %d. %-10s evidence=%.4f\n",
				i+1, recs.Col(0).Vec.Format(i), recs.Prob()[i])
		}
		fmt.Println()
	}
}

// recommendPlan builds the four-operator recommender for one user.
func recommendPlan(user string, k int) engine.Node {
	likes := triple.Property("likes") // (subject=user, object=item), materialized once

	// items the target user likes, with their confidence
	mine := engine.NewProject(
		engine.NewSelect(likes,
			expr.Cmp{Op: expr.Eq, L: expr.Column(triple.ColSubject), R: expr.Str(user)}),
		engine.ProjCol{Name: "item", E: expr.Column(triple.ColObject)},
	)

	// neighbours: users who like those items (excluding the user)
	coLikes := engine.NewHashJoin(mine, likes,
		[]string{"item"}, []string{triple.ColObject}, engine.JoinIndependent)
	neighbours := engine.NewSelect(
		engine.NewProject(coLikes,
			engine.ProjCol{Name: "user", E: expr.Column(triple.ColSubject)}),
		expr.Not{E: expr.Cmp{Op: expr.Eq, L: expr.Column("user"), R: expr.Str(user)}},
	)
	// one row per neighbour, evidence combined across shared items
	distinctNeighbours := engine.NewDistinct(neighbours, engine.GroupIndependent)

	// what the neighbours like, evidence propagating through both hops
	theirLikes := engine.NewHashJoin(distinctNeighbours, likes,
		[]string{"user"}, []string{triple.ColSubject}, engine.JoinIndependent)
	candidates := engine.NewDistinct(
		engine.NewProject(theirLikes,
			engine.ProjCol{Name: "item", E: expr.Column(triple.ColObject)}),
		engine.GroupIndependent)

	// subtract what the user already likes (probabilistic difference:
	// a strongly-liked item disappears, a tentative one is discounted)
	fresh := engine.NewSubtract(candidates, mine, false)

	return engine.NewTopN(fresh, k,
		engine.SortSpec{Col: "", Desc: true}, engine.SortSpec{Col: "item"})
}

// likesGraph is a small preference graph. Note the 0.6-confidence like:
// ann's interest in "jazz-records" was inferred, not stated.
func likesGraph() []triple.Triple {
	like := func(user, item string, p float64) triple.Triple {
		return triple.Triple{Subject: user, Property: "likes", Obj: triple.String(item), P: p}
	}
	return []triple.Triple{
		like("ann", "vinyl-player", 1),
		like("ann", "jazz-records", 0.6),
		like("bob", "vinyl-player", 1),
		like("bob", "tube-amp", 1),
		like("bob", "jazz-records", 1),
		like("cara", "tube-amp", 1),
		like("cara", "speaker-set", 1),
		like("cara", "vinyl-player", 0.8),
		like("dave", "speaker-set", 1),
		like("dave", "headphones", 1),
	}
}
