package irdb

import "testing"

// openT opens a database for a test, failing it on error.
func openT(t testing.TB, opts ...Option) *DB {
	t.Helper()
	db, err := Open(opts...)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return db
}
