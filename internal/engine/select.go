package engine

import (
	"context"
	"fmt"

	"irdb/internal/expr"
	"irdb/internal/relation"
	"irdb/internal/vector"
)

// Select filters rows by a boolean predicate, keeping tuple probabilities
// untouched (PRA selection leaves probabilities unchanged; it only removes
// tuples whose condition is false).
type Select struct {
	Child Node
	Pred  expr.Expr
}

// NewSelect filters child by pred.
func NewSelect(child Node, pred expr.Expr) *Select { return &Select{Child: child, Pred: pred} }

// Execute implements Node.
//
// The predicate is evaluated chunk-parallel: each worker evaluates the
// expression over a row-range view of the input and collects its matching
// row numbers; per-worker matches are merged in morsel order, so the
// output rows are exactly those of a serial scan. This relies on the
// expr contract that all expressions — including registered scalar
// functions (see expr.Func) — are element-wise.
func (s *Select) Execute(c context.Context, ctx *Ctx) (*relation.Relation, error) {
	in, err := ctx.Exec(c, s.Child)
	if err != nil {
		return nil, err
	}
	// Budget the worst case of the match collection up front: every row
	// matches, so the per-morsel parts plus the merged selection cost up
	// to 16 bytes per input row.
	if err := ctx.charge(c, int64(in.NumRows())*16); err != nil {
		return nil, err
	}
	ranges := ctx.morselRanges(in.NumRows())
	if len(ranges) == 0 {
		// Still evaluate the predicate over the empty input so type
		// errors surface exactly as they would serially.
		ranges = [][2]int{{0, 0}}
	}
	selParts := make([][]int, len(ranges))
	errParts := make([]error, len(ranges))
	ctx.runRanges(c, ranges, func(m, lo, hi int) {
		view := in
		if len(ranges) > 1 {
			view = in.Slice(lo, hi)
		}
		pv, err := s.Pred.Eval(view)
		if err != nil {
			errParts[m] = err
			return
		}
		bv, ok := vector.MaterializeConst(pv).(*vector.Bools)
		if !ok {
			errParts[m] = fmt.Errorf("predicate %s is %v, want boolean", s.Pred.String(), pv.Kind())
			return
		}
		vals := bv.Values()
		sel := make([]int, 0, len(vals)/4)
		for i, b := range vals {
			if b {
				sel = append(sel, lo+i)
			}
		}
		selParts[m] = sel
	})
	for _, err := range errParts {
		if err != nil {
			return nil, err
		}
	}
	if err := c.Err(); err != nil {
		return nil, err
	}
	total := 0
	for _, p := range selParts {
		total += len(p)
	}
	sel := make([]int, 0, total)
	for _, p := range selParts {
		sel = append(sel, p...)
	}
	return in.Gather(sel), nil
}

// Fingerprint implements Node.
func (s *Select) Fingerprint() string {
	return fmt.Sprintf("select(%s)(%s)", s.Pred.String(), s.Child.Fingerprint())
}

// Children implements Node.
func (s *Select) Children() []Node { return []Node{s.Child} }

// Label implements Node.
func (s *Select) Label() string { return "Select " + s.Pred.String() }

// ---------------------------------------------------------------------------
// Project

// ProjCol is one output column of a projection: a name and the expression
// computing it.
type ProjCol struct {
	Name string
	E    expr.Expr
}

// Project computes a new column list. Tuple probabilities pass through
// unchanged; duplicate elimination (the probabilistic PROJECT of PRA) is a
// separate operator, Distinct.
type Project struct {
	Child Node
	Cols  []ProjCol
}

// NewProject projects child onto the given output columns.
func NewProject(child Node, cols ...ProjCol) *Project { return &Project{Child: child, Cols: cols} }

// ByName is a convenience constructor for pass-through projection columns.
func ByName(names ...string) []ProjCol {
	out := make([]ProjCol, len(names))
	for i, n := range names {
		out[i] = ProjCol{Name: n, E: expr.Column(n)}
	}
	return out
}

// Execute implements Node.
func (p *Project) Execute(c context.Context, ctx *Ctx) (*relation.Relation, error) {
	in, err := ctx.Exec(c, p.Child)
	if err != nil {
		return nil, err
	}
	// Budget the copied probability column before materializing anything.
	if err := ctx.charge(c, int64(in.NumRows())*8); err != nil {
		return nil, err
	}
	cols := make([]relation.Column, len(p.Cols))
	for i, pc := range p.Cols {
		v, err := pc.E.Eval(in)
		if err != nil {
			return nil, err
		}
		// A literal projection column evaluates to a vector.Const; expand
		// it here — relations hold only dense vectors.
		cols[i] = relation.Column{Name: pc.Name, Vec: vector.MaterializeConst(v)}
	}
	prob := make([]float64, in.NumRows())
	copy(prob, in.Prob())
	return relation.FromColumns(cols, prob)
}

// Fingerprint implements Node.
func (p *Project) Fingerprint() string {
	s := "project("
	for i, pc := range p.Cols {
		if i > 0 {
			s += ","
		}
		s += pc.Name + "=" + pc.E.String()
	}
	return s + ")(" + p.Child.Fingerprint() + ")"
}

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Child} }

// Label implements Node.
func (p *Project) Label() string {
	s := "Project "
	for i, pc := range p.Cols {
		if i > 0 {
			s += ", "
		}
		s += pc.Name
	}
	return s
}

// ---------------------------------------------------------------------------
// Extend

// Extend appends one computed column to its input, keeping all existing
// columns. It is the engine's equivalent of SELECT *, expr AS name.
type Extend struct {
	Child Node
	Name  string
	E     expr.Expr
}

// NewExtend appends column name computed by e.
func NewExtend(child Node, name string, e expr.Expr) *Extend {
	return &Extend{Child: child, Name: name, E: e}
}

// Execute implements Node.
func (x *Extend) Execute(c context.Context, ctx *Ctx) (*relation.Relation, error) {
	in, err := ctx.Exec(c, x.Child)
	if err != nil {
		return nil, err
	}
	v, err := x.E.Eval(in)
	if err != nil {
		return nil, err
	}
	// Budget the copied probability column before assembling the output.
	if err := ctx.charge(c, int64(in.NumRows())*8); err != nil {
		return nil, err
	}
	cols := make([]relation.Column, 0, in.NumCols()+1)
	cols = append(cols, in.Columns()...)
	cols = append(cols, relation.Column{Name: x.Name, Vec: vector.MaterializeConst(v)})
	prob := make([]float64, in.NumRows())
	copy(prob, in.Prob())
	return relation.FromColumns(cols, prob)
}

// Fingerprint implements Node.
func (x *Extend) Fingerprint() string {
	return fmt.Sprintf("extend(%s=%s)(%s)", x.Name, x.E.String(), x.Child.Fingerprint())
}

// Children implements Node.
func (x *Extend) Children() []Node { return []Node{x.Child} }

// Label implements Node.
func (x *Extend) Label() string { return "Extend " + x.Name }
