// Package spinql implements the SpinQL query language of section 2.3 —
// the "proprietary domain specific language … which implements the
// Probabilistic Relational Algebra (PRA) … with particular focus on
// efficient translation to SQL". Programs are sequences of named
// statements over base relations:
//
//	docs = PROJECT [$1,$6] (
//	  JOIN INDEPENDENT [$1=$1] (
//	    SELECT [$2="category" and $3="toy"] (triples),
//	    SELECT [$2="description"] (triples) ) );
//
// Supported operators: SELECT, PROJECT, JOIN, UNITE, SUBTRACT, WEIGHT,
// BAYES, with the assumptions INDEPENDENT, DISJOINT, MAX and SUM, plus
// the computation forms retrieval models need — MAP (computed
// projections with function calls such as stem(lcase($2),"sb-english")),
// GROUP (aggregation) and TOKENIZE (the tokenizer table function) — which
// together make BM25 expressible entirely in SpinQL, as the paper states
// for its "Rank by Text BM25" block.
// Compilation produces pra plans, which in turn lower onto the relational
// engine (and can be printed as SQL via pra.ToSQL).
package spinql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokColRef // $n
	tokParam  // ?name — a prepared-statement parameter placeholder
	tokString
	tokNumber
	tokSymbol // one of = != < <= > >= ( ) [ ] , ;
)

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset, for error messages
	line int
}

type lexer struct {
	src    string
	pos    int
	line   int
	tokens []token
}

// lex splits src into tokens. Comments run from "--" or "#" to end of
// line.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '#' || (c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-'):
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '-' || c == '+' || c == '*' || c == '/':
			l.emit(tokSymbol, string(c), l.pos)
			l.pos++
		case c == '$':
			start := l.pos
			l.pos++
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
			if l.pos == start+1 {
				return nil, fmt.Errorf("spinql: line %d: '$' must be followed by a column number", l.line)
			}
			l.emit(tokColRef, l.src[start:l.pos], start)
		case c == '?':
			// ?name: a prepared-statement parameter. The token text is the
			// bare name.
			start := l.pos
			l.pos++
			nameStart := l.pos
			for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
				l.pos++
			}
			if l.pos == nameStart || !isIdentStart(rune(l.src[nameStart])) {
				return nil, fmt.Errorf("spinql: line %d: '?' must be followed by a parameter name", l.line)
			}
			l.emit(tokParam, l.src[nameStart:l.pos], start)
		case c == '"' || c == '\'':
			quote := c
			start := l.pos
			l.pos++
			var sb strings.Builder
			closed := false
			for l.pos < len(l.src) {
				ch := l.src[l.pos]
				if ch == quote {
					closed = true
					l.pos++
					break
				}
				if ch == '\\' && l.pos+1 < len(l.src) {
					l.pos++
					sb.WriteByte(l.src[l.pos])
					l.pos++
					continue
				}
				if ch == '\n' {
					l.line++
				}
				sb.WriteByte(ch)
				l.pos++
			}
			if !closed {
				return nil, fmt.Errorf("spinql: line %d: unterminated string literal", l.line)
			}
			l.emit(tokString, sb.String(), start)
		case isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
			start := l.pos
			for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.') {
				l.pos++
			}
			l.emit(tokNumber, l.src[start:l.pos], start)
		case c == '!':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
				l.emit(tokSymbol, "!=", l.pos)
				l.pos += 2
			} else {
				return nil, fmt.Errorf("spinql: line %d: unexpected '!'", l.line)
			}
		case c == '<' || c == '>':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
				l.emit(tokSymbol, l.src[l.pos:l.pos+2], l.pos)
				l.pos += 2
			} else if c == '<' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '>' {
				l.emit(tokSymbol, "!=", l.pos)
				l.pos += 2
			} else {
				l.emit(tokSymbol, string(c), l.pos)
				l.pos++
			}
		case strings.ContainsRune("=()[],;", rune(c)):
			l.emit(tokSymbol, string(c), l.pos)
			l.pos++
		case isIdentStart(rune(c)):
			start := l.pos
			for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
				l.pos++
			}
			l.emit(tokIdent, l.src[start:l.pos], start)
		default:
			return nil, fmt.Errorf("spinql: line %d: unexpected character %q", l.line, c)
		}
	}
	l.emit(tokEOF, "", l.pos)
	return l.tokens, nil
}

func (l *lexer) emit(kind tokenKind, text string, pos int) {
	l.tokens = append(l.tokens, token{kind: kind, text: text, pos: pos, line: l.line})
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-'
}
