package experiments

import (
	"context"
	"fmt"

	"irdb/internal/bench"
	"irdb/internal/catalog"
	"irdb/internal/engine"
	"irdb/internal/expr"
	"irdb/internal/triple"
	"irdb/internal/workload"
)

// E3 quantifies the cost of score propagation (section 2.3): every
// relational operator also combines the probability column. We run the
// same graph pipeline — traverse lots→auctions→lots and deduplicate —
// once with full probabilistic semantics (JOIN INDEPENDENT, noisy-or
// dedup) and once with boolean semantics (filter joins, certain dedup),
// on the same data. The delta is the price of tuple-level uncertainty.
func E3(cfg Config) (*Result, error) {
	acfg := workload.DefaultAuctionConfig()
	acfg.Lots = cfg.size(20000)
	acfg.Auctions = cfg.size(60)
	acfg.Seed = cfg.Seed
	graph := workload.AuctionGraph(acfg)

	cat := catalog.New(0)
	triple.NewStore(cat).Load(graph)
	ctx := engine.NewCtx(cat)
	ctx.Parallelism = cfg.Parallelism
	// Pre-materialize the shared property tables so both variants measure
	// pure operator cost, not first-touch materialization.
	if _, err := ctx.Exec(context.Background(), triple.Property("hasAuction")); err != nil {
		return nil, err
	}
	if _, err := ctx.Exec(context.Background(), triple.SubjectsOfType("lot")); err != nil {
		return nil, err
	}

	pipeline := func(mode engine.JoinProb, dedup engine.GroupProb) engine.Node {
		lots := triple.SubjectsOfType("lot")
		fwd := engine.NewHashJoin(lots, triple.Property("hasAuction"),
			[]string{triple.ColSubject}, []string{triple.ColSubject}, mode)
		aucs := engine.NewProject(fwd,
			engine.ProjCol{Name: triple.ColSubject, E: expr.Column(triple.ColObject)})
		back := engine.NewHashJoin(aucs, triple.Property("hasAuction"),
			[]string{triple.ColSubject}, []string{triple.ColObject}, mode)
		lotsAgain := engine.NewProject(back,
			engine.ProjCol{Name: triple.ColSubject, E: expr.Column(triple.ColSubject + "_2")})
		return engine.NewDistinct(lotsAgain, dedup)
	}

	// Warm both variants once (join-index construction), then interleave
	// the measured runs so allocator and GC drift hits both equally.
	if _, err := ctx.Exec(context.Background(), pipeline(engine.JoinIndependent, engine.GroupIndependent)); err != nil {
		return nil, err
	}
	if _, err := ctx.Exec(context.Background(), pipeline(engine.JoinLeft, engine.GroupCertain)); err != nil {
		return nil, err
	}
	reps := cfg.reps(15)
	probabilistic := &bench.Latencies{}
	boolean := &bench.Latencies{}
	for i := 0; i < reps; i++ {
		b, err := bench.Measure(1, func() error {
			_, err := ctx.Exec(context.Background(), pipeline(engine.JoinLeft, engine.GroupCertain))
			return err
		})
		if err != nil {
			return nil, err
		}
		boolean.Add(b.Mean())
		p, err := bench.Measure(1, func() error {
			_, err := ctx.Exec(context.Background(), pipeline(engine.JoinIndependent, engine.GroupIndependent))
			return err
		})
		if err != nil {
			return nil, err
		}
		probabilistic.Add(p.Mean())
	}

	overhead := 0.0
	if boolean.P(0.5) > 0 {
		overhead = (float64(probabilistic.P(0.5)) - float64(boolean.P(0.5))) /
			float64(boolean.P(0.5)) * 100
	}

	table := &bench.Table{
		Title:  "E3: probabilistic score propagation vs boolean evaluation (interleaved runs)",
		Header: []string{"variant", "p50", "p95"},
	}
	table.AddRow("boolean (facts only)", boolean.P(0.5), boolean.P(0.95))
	table.AddRow("probabilistic (PRA)", probabilistic.P(0.5), probabilistic.P(0.95))
	table.AddNote("probability propagation overhead: %.1f%% on a %d-lot traverse+dedup pipeline", overhead, acfg.Lots)

	return &Result{
		ID:         "E3",
		Name:       "score propagation overhead (section 2.3)",
		PaperClaim: "appending a probability column to all tables lets structured search play alongside unstructured search 'with the very same tools'; the paper implies the overhead is acceptable in production",
		Finding:    fmt.Sprintf("probabilistic evaluation costs %.1f%% over boolean on the same plan shape", overhead),
		Tables:     []*bench.Table{table},
	}, nil
}
