// Package analysistest runs one analyzer over `// want`-annotated
// fixture packages, mirroring the x/tools package of the same name on
// the stdlib. Fixtures live under testdata/src/<import-path>/ next to
// the analyzer's own test; each expected diagnostic is annotated on the
// offending line:
//
//	go func() {}() // want "goroutine spawned without panic containment"
//
// The quoted string is a regexp matched against the diagnostic message.
// A line may carry several expectations (`// want "a" "b"`). The test
// fails symmetrically: a diagnostic with no matching annotation is
// unexpected, and an annotation with no matching diagnostic means the
// analyzer missed (or was disabled) — so a fixture with annotations can
// never pass vacuously.
//
// Imports inside fixtures resolve in two steps: an import path with a
// directory under testdata/src is type-checked from source (letting
// fixtures fake the packages an analyzer keys on, like a local `fault`
// or `faultpoint`), and anything else resolves through compiler export
// data exactly as the real drivers do. `//lint:allow` suppression is
// applied before matching, so fixtures also pin the escape hatch.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"irdb/internal/lint/analysis"
	"irdb/internal/lint/load"
)

// Run applies az to each fixture package (an import path under
// testdata/src) and compares its diagnostics against the `// want`
// annotations in that package's files.
func Run(t *testing.T, az *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	ld := newLoader(t, filepath.Join("testdata", "src"))
	for _, path := range pkgPaths {
		runOne(t, az, ld.check(path))
	}
}

// runOne executes one analyzer/package pass and reconciles diagnostics
// with expectations.
func runOne(t *testing.T, az *analysis.Analyzer, pkg *load.Package) {
	t.Helper()
	wants := parseWants(t, pkg)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no // want annotations; it could not detect a disabled %s analyzer", pkg.PkgPath, az.Name)
	}
	allow := analysis.BuildAllowIndex(pkg.Fset, pkg.Files)
	pass := &analysis.Pass{
		Analyzer:  az,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
	}
	pass.Report = func(d analysis.Diagnostic) {
		if allow.Allows(pkg.Fset, az.Name, d.Pos) {
			return
		}
		p := pkg.Fset.Position(d.Pos)
		for _, w := range wants {
			if !w.matched && w.file == p.Filename && w.line == p.Line && w.rx.MatchString(d.Message) {
				w.matched = true
				return
			}
		}
		t.Errorf("%s: unexpected diagnostic: %s", p, d.Message)
	}
	if err := az.Run(pass); err != nil {
		t.Fatalf("%s on %s: %v", az.Name, pkg.PkgPath, err)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q (did the %s analyzer run?)", w.file, w.line, w.rx, az.Name)
		}
	}
}

// wantExp is one parsed expectation: a regexp anchored to a file line.
type wantExp struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

// parseWants extracts `// want "rx"...` annotations from the package's
// comments. Both interpreted and raw string literals are accepted.
func parseWants(t *testing.T, pkg *load.Package) []*wantExp {
	t.Helper()
	var out []*wantExp
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(text, "want"))
				for rest != "" {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s: malformed want annotation %q: %v", pos, text, err)
					}
					s, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: malformed want pattern %s: %v", pos, q, err)
					}
					rx, err := regexp.Compile(s)
					if err != nil {
						t.Fatalf("%s: want pattern %q does not compile: %v", pos, s, err)
					}
					out = append(out, &wantExp{file: pos.Filename, line: pos.Line, rx: rx})
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}
	return out
}

// loader type-checks fixture packages from source, resolving fixture
// imports recursively and everything else through export data.
type loader struct {
	t    *testing.T
	root string
	fset *token.FileSet
	pkgs map[string]*load.Package
	base types.Importer
}

func newLoader(t *testing.T, root string) *loader {
	t.Helper()
	ld := &loader{t: t, root: root, fset: token.NewFileSet(), pkgs: map[string]*load.Package{}}
	ld.base = load.NewExportImporter(ld.fset, exportResolver(t, externalImports(t, root)))
	return ld
}

// check parses and type-checks one fixture package (memoized).
func (ld *loader) check(path string) *load.Package {
	ld.t.Helper()
	if p, ok := ld.pkgs[path]; ok {
		return p
	}
	dir := filepath.Join(ld.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		ld.t.Fatalf("fixture package %s: %v", path, err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		ld.t.Fatalf("fixture package %s has no .go files", path)
	}
	pkg, err := load.Check(ld.fset, path, files, ld)
	if err != nil {
		ld.t.Fatalf("fixture package %s: %v", path, err)
	}
	ld.pkgs[path] = pkg
	return pkg
}

// Import implements types.Importer for fixture type-checking.
func (ld *loader) Import(path string) (*types.Package, error) {
	if st, err := os.Stat(filepath.Join(ld.root, filepath.FromSlash(path))); err == nil && st.IsDir() {
		return ld.check(path).Types, nil
	}
	return ld.base.Import(path)
}

// externalImports scans every fixture file for imports that do not
// resolve to a fixture directory — the set that needs export data.
func externalImports(t *testing.T, root string) []string {
	t.Helper()
	seen := map[string]bool{}
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(name string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(name, ".go") {
			return err
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ImportsOnly)
		if err != nil {
			return fmt.Errorf("%s: %v", name, err)
		}
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if st, err := os.Stat(filepath.Join(root, filepath.FromSlash(p))); err == nil && st.IsDir() {
				continue
			}
			seen[p] = true
		}
		return nil
	})
	if err != nil {
		t.Fatalf("scanning fixtures under %s: %v", root, err)
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// exportResolver builds an import-path → export-file map for the given
// packages and their dependencies, via one `go list -export -deps` call.
func exportResolver(t *testing.T, patterns []string) func(string) (string, bool) {
	t.Helper()
	exports := map[string]string{}
	if len(patterns) > 0 {
		args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Export"}, patterns...)
		cmd := exec.Command("go", args...)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			t.Fatalf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p struct{ ImportPath, Export string }
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				t.Fatalf("decoding go list output: %v", err)
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	return func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	}
}
