package irdb

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// budgetQuery joins two selections and aggregates — enough intermediate
// state (hashes, build table, gathers, accumulators) to charge a budget
// meaningfully at every site.
const budgetQuery = `
	j = JOIN INDEPENDENT [$1=$1] (
		SELECT [$2="type" and $3="lot"] (triples),
		SELECT [$2="description"] (triples) );
	PROJECT INDEPENDENT [$1] (j);`

// TestFacadeBudgetEquivalence: a query under a generous per-query budget
// is bit-identical to the ungoverned run at parallelism 1, 2 and 8, and
// the pool is fully drained once the result is returned.
func TestFacadeBudgetEquivalence(t *testing.T) {
	ctx := context.Background()
	var reference string
	for _, par := range []int{1, 2, 8} {
		plain := openTestDB(t, par)
		want, err := plain.Query(ctx, budgetQuery)
		if err != nil {
			t.Fatal(err)
		}
		if want.NumRows() == 0 {
			t.Fatal("empty result, equivalence is vacuous")
		}

		db := openT(t, WithParallelism(par), WithQueryMemBytes(1<<30), WithMemoryPoolBytes(1<<32))
		t.Cleanup(func() { db.Close() })
		if err := db.LoadTriples(testGraph(400)); err != nil {
			t.Fatal(err)
		}
		got, err := db.Query(ctx, budgetQuery)
		if err != nil {
			t.Fatalf("par %d: budgeted query: %v", par, err)
		}
		w, g := want.Format(-1), got.Format(-1)
		if w != g {
			t.Fatalf("par %d: budgeted result differs:\nwant:\n%s\ngot:\n%s", par, w, g)
		}
		if reference == "" {
			reference = g
		} else if g != reference {
			t.Fatalf("par %d: result differs from parallelism 1", par)
		}
		ms := db.Stats().Memory
		if !ms.Enabled {
			t.Fatal("memory governance not enabled")
		}
		if ms.PoolPeak == 0 {
			t.Fatalf("par %d: no charges reached the pool", par)
		}
		if ms.PoolUsed != 0 {
			t.Fatalf("par %d: pool holds %d bytes after query returned", par, ms.PoolUsed)
		}
		if ms.BudgetDenials != 0 {
			t.Fatalf("par %d: %d denials under a generous budget", par, ms.BudgetDenials)
		}
	}
}

// TestFacadeBudgetExceeded: a starved budget aborts the query with
// ErrBudgetExceeded, leaks nothing, counts the denial, and leaves the
// database fully usable.
func TestFacadeBudgetExceeded(t *testing.T) {
	ctx := context.Background()
	// 48 KiB starves budgetQuery (its two full-table selections alone
	// reserve ~64 KiB of match-collection scratch) while leaving room for
	// the single-selection recovery query below.
	db := openT(t, WithParallelism(2), WithQueryMemBytes(48<<10))
	t.Cleanup(func() { db.Close() })
	if err := db.LoadTriples(testGraph(400)); err != nil {
		t.Fatal(err)
	}
	_, err := db.Query(ctx, budgetQuery)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	ms := db.Stats().Memory
	if ms.BudgetDenials == 0 {
		t.Fatal("denial not counted")
	}
	if ms.PoolUsed != 0 {
		t.Fatalf("pool holds %d bytes after failed query", ms.PoolUsed)
	}
	// The database survives: a query that fits the budget still runs.
	small, err := db.Query(ctx, `SELECT [$1 = "auction000001"] (SELECT [$2="type"] (triples));`)
	if err != nil {
		t.Fatalf("small query after budget failure: %v", err)
	}
	if small.NumRows() != 1 {
		t.Fatalf("small query rows = %d, want 1", small.NumRows())
	}
}

// TestQueryStreamEquivalence: the stream's concatenated batches are
// row-for-row identical to the materialized Result, across multiple
// batches, and exhaustion reports a nil Err.
func TestQueryStreamEquivalence(t *testing.T) {
	ctx := context.Background()
	db := openT(t, WithParallelism(2), WithQueryMemBytes(1<<30))
	t.Cleanup(func() { db.Close() })
	// 1500 price triples → the SELECT below yields >1 batch at 1024
	// rows per batch.
	if err := db.LoadTriples(testGraph(1500)); err != nil {
		t.Fatal(err)
	}
	stmt, err := db.Prepare(`SELECT [$2 = "price"] (triples_int);`)
	if err != nil {
		t.Fatal(err)
	}
	want, err := stmt.Query(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if want.NumRows() <= streamBatchRows {
		t.Fatalf("only %d rows; need more than one batch (%d)", want.NumRows(), streamBatchRows)
	}

	st, err := stmt.QueryStream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.NumRows() != want.NumRows() {
		t.Fatalf("stream NumRows = %d, want %d", st.NumRows(), want.NumRows())
	}
	if cols, wcols := st.Columns(), want.Columns(); strings.Join(cols, ",") != strings.Join(wcols, ",") {
		t.Fatalf("stream columns %v, want %v", cols, wcols)
	}
	row, batches := 0, 0
	for st.Next() {
		b := st.Batch()
		batches++
		for i := 0; i < b.NumRows(); i++ {
			for c := range b.Columns() {
				if got, wantV := b.Value(i, c), want.Value(row, c); got != wantV {
					t.Fatalf("row %d col %d: stream %q, materialized %q", row, c, got, wantV)
				}
			}
			if b.Prob(i) != want.Prob(row) {
				t.Fatalf("row %d: stream prob %v, materialized %v", row, b.Prob(i), want.Prob(row))
			}
			row++
		}
	}
	if st.Err() != nil {
		t.Fatalf("stream ended with %v", st.Err())
	}
	if row != want.NumRows() {
		t.Fatalf("stream yielded %d rows, want %d", row, want.NumRows())
	}
	if batches < 2 {
		t.Fatalf("stream yielded %d batch(es); the multi-batch path went untested", batches)
	}
	if ms := db.Stats().Memory; ms.PoolUsed != 0 || ms.ActiveReservations != 0 {
		t.Fatalf("exhausted stream still holds pool bytes=%d reservations=%d", ms.PoolUsed, ms.ActiveReservations)
	}
}

// TestStreamHoldsAndReleasesResources: an open stream owns its admission
// slot and memory reservation; Close (or cancellation) returns both.
func TestStreamHoldsAndReleasesResources(t *testing.T) {
	ctx := context.Background()
	db := openT(t,
		WithParallelism(2),
		WithMaxInFlight(1),
		WithAdmissionWait(20*time.Millisecond),
		WithQueryMemBytes(1<<30))
	t.Cleanup(func() { db.Close() })
	if err := db.LoadTriples(testGraph(400)); err != nil {
		t.Fatal(err)
	}
	stmt, err := db.Prepare(`SELECT [$2 = "type"] (triples);`)
	if err != nil {
		t.Fatal(err)
	}

	st, err := stmt.QueryStream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ms := db.Stats().Memory; ms.ActiveReservations != 1 {
		t.Fatalf("open stream holds %d reservations, want 1", ms.ActiveReservations)
	}
	// The stream still occupies the single in-flight slot: a concurrent
	// query must shed with ErrOverloaded, exactly as a slow reader on a
	// loaded server should.
	if _, err := db.Query(ctx, budgetQuery); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("query while stream open: err = %v, want ErrOverloaded", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if ms := db.Stats().Memory; ms.ActiveReservations != 0 || ms.PoolUsed != 0 {
		t.Fatalf("closed stream still holds reservations=%d bytes=%d", ms.ActiveReservations, ms.PoolUsed)
	}
	if _, err := db.Query(ctx, budgetQuery); err != nil {
		t.Fatalf("query after stream close: %v", err)
	}

	// Cancellation mid-stream releases everything too.
	cctx, cancel := context.WithCancel(ctx)
	st2, err := stmt.QueryStream(cctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Next() {
		t.Fatalf("first batch unavailable: %v", st2.Err())
	}
	cancel()
	if st2.Next() {
		t.Fatal("Next succeeded after cancellation")
	}
	if !errors.Is(st2.Err(), context.Canceled) {
		t.Fatalf("stream err = %v, want context.Canceled", st2.Err())
	}
	if _, err := db.Query(ctx, budgetQuery); err != nil {
		t.Fatalf("query after cancelled stream: %v", err)
	}
	if ms := db.Stats().Memory; ms.ActiveReservations != 0 || ms.PoolUsed != 0 {
		t.Fatalf("cancelled stream still holds reservations=%d bytes=%d", ms.ActiveReservations, ms.PoolUsed)
	}
}
