package expr

// Query-parameter placeholders. A Param is the ?name of a prepared SpinQL
// statement: it parses and type-checks like any operand, but carries no
// value. Binding replaces Params with Lit values via Bind, producing a new
// expression tree; sub-expressions without parameters are shared, so a
// bound plan's fingerprints stay canonical and the materialization cache
// is shared across bindings wherever a sub-plan does not depend on the
// parameters.

import (
	"fmt"

	"irdb/internal/relation"
	"irdb/internal/vector"
)

// Param is a named parameter placeholder (?name in SpinQL). Evaluating an
// unbound Param is an error: plans containing parameters must be bound
// (engine.Bind / Stmt.Query) before execution.
type Param struct{ Name string }

// Eval implements Expr.
func (p Param) Eval(r *relation.Relation) (vector.Vector, error) {
	return nil, fmt.Errorf("expr: unbound parameter ?%s (execute through a prepared statement and bind it)", p.Name)
}

// String implements Expr. The rendering is canonical — two plans built
// from the same statement text share fingerprints — but plans containing
// a Param are never cached: binding replaces the Param with the literal
// first, and only the bound tree executes.
func (p Param) String() string { return "?" + p.Name }

// Bind returns e with every Param replaced by the literal lookup returns
// for its name. The second result reports whether anything was replaced;
// when false, e itself is returned, so parameter-free expressions are
// shared between the prepared plan and its bound instances. A parameter
// whose name lookup does not know is an error.
func Bind(e Expr, lookup func(name string) (Lit, bool)) (Expr, bool, error) {
	switch x := e.(type) {
	case Param:
		l, ok := lookup(x.Name)
		if !ok {
			return nil, false, fmt.Errorf("expr: no binding for parameter ?%s", x.Name)
		}
		return l, true, nil
	case Cmp:
		l, lc, err := Bind(x.L, lookup)
		if err != nil {
			return nil, false, err
		}
		r, rc, err := Bind(x.R, lookup)
		if err != nil {
			return nil, false, err
		}
		if !lc && !rc {
			return e, false, nil
		}
		return Cmp{Op: x.Op, L: l, R: r}, true, nil
	case And:
		l, lc, err := Bind(x.L, lookup)
		if err != nil {
			return nil, false, err
		}
		r, rc, err := Bind(x.R, lookup)
		if err != nil {
			return nil, false, err
		}
		if !lc && !rc {
			return e, false, nil
		}
		return And{L: l, R: r}, true, nil
	case Or:
		l, lc, err := Bind(x.L, lookup)
		if err != nil {
			return nil, false, err
		}
		r, rc, err := Bind(x.R, lookup)
		if err != nil {
			return nil, false, err
		}
		if !lc && !rc {
			return e, false, nil
		}
		return Or{L: l, R: r}, true, nil
	case Not:
		inner, ch, err := Bind(x.E, lookup)
		if err != nil {
			return nil, false, err
		}
		if !ch {
			return e, false, nil
		}
		return Not{E: inner}, true, nil
	case Arith:
		l, lc, err := Bind(x.L, lookup)
		if err != nil {
			return nil, false, err
		}
		r, rc, err := Bind(x.R, lookup)
		if err != nil {
			return nil, false, err
		}
		if !lc && !rc {
			return e, false, nil
		}
		return Arith{Op: x.Op, L: l, R: r}, true, nil
	case Call:
		args := make([]Expr, len(x.Args))
		changed := false
		for i, a := range x.Args {
			b, ch, err := Bind(a, lookup)
			if err != nil {
				return nil, false, err
			}
			args[i] = b
			changed = changed || ch
		}
		if !changed {
			return e, false, nil
		}
		return Call{Name: x.Name, Args: args}, true, nil
	default:
		return e, false, nil
	}
}

// Params appends the names of every Param in e to names, in first
// appearance order without duplicates, and returns the extended slice.
func Params(e Expr, names []string) []string {
	add := func(n string) []string {
		for _, have := range names {
			if have == n {
				return names
			}
		}
		return append(names, n)
	}
	switch x := e.(type) {
	case Param:
		names = add(x.Name)
	case Cmp:
		names = Params(x.L, names)
		names = Params(x.R, names)
	case And:
		names = Params(x.L, names)
		names = Params(x.R, names)
	case Or:
		names = Params(x.L, names)
		names = Params(x.R, names)
	case Not:
		names = Params(x.E, names)
	case Arith:
		names = Params(x.L, names)
		names = Params(x.R, names)
	case Call:
		for _, a := range x.Args {
			names = Params(a, names)
		}
	}
	return names
}
