// Fixtures for the chargedalloc analyzer: data-sized allocations in
// engine code must sit after a budget charge, lexically or via every
// caller.
package chargedalloc

import (
	"chargedalloc/memory"
	"chargedalloc/vector"
)

type ctx struct{}

func (c *ctx) charge(n int64) error    { return nil }
func (c *ctx) chargeRel(n int64) error { return nil }

func uncharged(n int) []int {
	return make([]int, n) // want "make with non-constant length"
}

func unchargedCap(n int) []int {
	return make([]int, 0, n) // want "make with non-constant length"
}

func unchargedMap(n int) map[int]int {
	return make(map[int]int, n) // want "make with non-constant length"
}

func unchargedCtor(n int) []int64 {
	return vector.NewSizedInts(n) // want "pre-sized constructor"
}

func charged(c *ctx, n int) []int {
	if err := c.charge(int64(n) * 8); err != nil {
		return nil
	}
	return make([]int, n)
}

func chargedViaMemory(n int) []byte {
	if err := memory.Charge(int64(n)); err != nil {
		return nil
	}
	return make([]byte, n)
}

// constSized make is O(1) regardless of data; never flagged.
func constSized() []int {
	return make([]int, 64)
}

// channel capacity is a header, not a data buffer; never flagged.
func channel(n int) chan int {
	return make(chan int, n)
}

// umbrella charges once; coveredHelper allocates under that umbrella.
// Every call site of coveredHelper is past a charge, so its own make
// needs no local charge (the fixpoint rule).
func umbrella(c *ctx, n int) []int {
	if err := c.charge(int64(n) * 8); err != nil {
		return nil
	}
	return coveredHelper(n)
}

func coveredHelper(n int) []int {
	return make([]int, n)
}

// leakyHelper has one charged caller and one uncharged caller: not
// covered, so its allocation is flagged.
func chargedCaller(c *ctx, n int) []int {
	if err := c.chargeRel(int64(n)); err != nil {
		return nil
	}
	return leakyHelper(n)
}

func unchargedCaller(n int) []int {
	return leakyHelper(n)
}

func leakyHelper(n int) []int {
	return make([]int, n) // want "make with non-constant length"
}

func annotated(n int) []int {
	out := make([]int, n) //lint:allow chargedalloc O(parallelism) scratch, bounded by the worker pool not the data
	return out
}
