package engine

import (
	"hash/maphash"
	"runtime"
	"sync"

	"irdb/internal/relation"
)

// minMorsel is the smallest row range worth shipping to another worker.
// Below this, goroutine hand-off costs more than the loop body; chunked
// loops over fewer than 2*minMorsel rows run inline.
const minMorsel = 2048

// parallelism reports the effective worker count: Ctx.Parallelism, or
// GOMAXPROCS when unset.
func (ctx *Ctx) parallelism() int {
	if ctx.Parallelism > 0 {
		return ctx.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// acquire tries to reserve one extra worker slot. It never blocks: when the
// pool is saturated the caller runs the work inline instead, which keeps
// plan execution deadlock-free no matter how subtrees nest — a goroutine
// never waits for a slot while holding one.
func (ctx *Ctx) acquire() bool {
	ctx.semOnce.Do(func() {
		// Slots gate only the extra goroutines; the calling goroutine
		// always works too, so parallelism p means at most p-1 slots.
		ctx.sem = make(chan struct{}, ctx.parallelism()-1)
	})
	select {
	case ctx.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

func (ctx *Ctx) release() { <-ctx.sem }

// execPair evaluates two sibling subtrees, concurrently when a worker slot
// is free. The left subtree runs on the calling goroutine; the right is
// shipped to a worker. Used by the binary operators (join, set ops) whose
// inputs are independent.
func (ctx *Ctx) execPair(l, r Node) (*relation.Relation, *relation.Relation, error) {
	if !ctx.acquire() {
		left, err := ctx.Exec(l)
		if err != nil {
			return nil, nil, err
		}
		right, err := ctx.Exec(r)
		if err != nil {
			return nil, nil, err
		}
		return left, right, nil
	}
	var (
		right *relation.Relation
		rErr  error
		done  = make(chan struct{})
	)
	go func() {
		defer close(done)
		defer ctx.release()
		right, rErr = ctx.Exec(r)
	}()
	left, lErr := ctx.Exec(l)
	<-done
	if lErr != nil {
		return nil, nil, lErr
	}
	if rErr != nil {
		return nil, nil, rErr
	}
	return left, right, nil
}

// execAll evaluates n independent subtrees, spreading them over available
// worker slots; results keep input order. Used by Concat and by any caller
// fanning out over a list of branches.
func (ctx *Ctx) execAll(nodes []Node) ([]*relation.Relation, error) {
	out := make([]*relation.Relation, len(nodes))
	errs := make([]error, len(nodes))
	var wg sync.WaitGroup
	for i, n := range nodes {
		if i < len(nodes)-1 && ctx.acquire() {
			wg.Add(1)
			go func(i int, n Node) {
				defer wg.Done()
				defer ctx.release()
				out[i], errs[i] = ctx.Exec(n)
			}(i, n)
		} else {
			out[i], errs[i] = ctx.Exec(n)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// parallelRanges splits [0, n) into contiguous morsels and runs fn once per
// morsel, concurrently when worker slots are free. Morsels are disjoint, so
// fn may write to per-row output slots without synchronization; callers
// that accumulate per-morsel results must merge them in morsel order to
// stay bit-identical to the serial loop.
func (ctx *Ctx) parallelRanges(n int, fn func(lo, hi int)) {
	ctx.runRanges(ctx.morselRanges(n), func(_, lo, hi int) { fn(lo, hi) })
}

// morselRanges returns the [lo, hi) boundaries parallelRanges would use,
// for callers that need to pre-size one output bucket per morsel.
func (ctx *Ctx) morselRanges(n int) [][2]int {
	p := ctx.parallelism()
	if p <= 1 || n < 2*minMorsel {
		if n == 0 {
			return nil
		}
		return [][2]int{{0, n}}
	}
	chunks := (n + minMorsel - 1) / minMorsel
	if chunks > p {
		chunks = p
	}
	size := (n + chunks - 1) / chunks
	out := make([][2]int, 0, chunks)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// runRanges executes fn for each pre-computed morsel, concurrently when
// slots are free. fn receives the morsel index so callers can fill
// per-morsel buckets and merge them in order afterwards.
func (ctx *Ctx) runRanges(ranges [][2]int, fn func(m, lo, hi int)) {
	var wg sync.WaitGroup
	for m, r := range ranges {
		if m < len(ranges)-1 && ctx.acquire() {
			wg.Add(1)
			go func(m, lo, hi int) {
				defer wg.Done()
				defer ctx.release()
				fn(m, lo, hi)
			}(m, r[0], r[1])
		} else {
			fn(m, r[0], r[1])
		}
	}
	wg.Wait()
}

// gatherParallel is relation.Gather with the row copies split over
// morsels: the destination relation is allocated once at full size and
// each worker writes its [lo, hi) slice of sel through the write-at-offset
// vector API. Disjoint ranges touch disjoint output rows, so the result is
// bit-identical to the serial Gather at any parallelism.
func gatherParallel(ctx *Ctx, r *relation.Relation, sel []int) *relation.Relation {
	out := r.NewSizedLike(len(sel))
	ctx.parallelRanges(len(sel), func(lo, hi int) {
		r.GatherRangeInto(out, sel, lo, hi)
	})
	return out
}

// hashRowsParallel is relation.HashRows with the rows split over morsels.
func hashRowsParallel(ctx *Ctx, r *relation.Relation, seed maphash.Seed, colIdx []int) []uint64 {
	sums := make([]uint64, r.NumRows())
	ctx.parallelRanges(r.NumRows(), func(lo, hi int) {
		r.HashRowsRange(seed, colIdx, sums, lo, hi)
	})
	return sums
}

// bucketIndex maps 64-bit row hashes to lists of row indexes, partitioned
// by the low hash bits. Partitioning is what makes the build parallel: a
// hash lives in exactly one partition, so per-partition maps can be filled
// by concurrent workers without sharing. Row lists hold ascending row
// indexes — the same order a serial single-map build appends them in — so
// probes that scan a bucket in order emit matches bit-identically to the
// serial build.
type bucketIndex struct {
	mask  uint64
	parts []map[uint64][]int
}

// lookup returns the rows whose hash equals h.
func (b *bucketIndex) lookup(h uint64) []int { return b.parts[h&b.mask][h] }

// buildBuckets builds the hash → rows index over the given per-row hashes.
// Large inputs build in two parallel phases: each morsel splits its rows by
// partition, then one worker per partition merges the morsel lists — in
// morsel order, so every bucket's rows stay ascending — into that
// partition's map. Small inputs fall back to the serial single-map build.
func buildBuckets(ctx *Ctx, hashes []uint64) *bucketIndex {
	n := len(hashes)
	ranges := ctx.morselRanges(n)
	if len(ranges) <= 1 {
		m := make(map[uint64][]int, n)
		for i, h := range hashes {
			m[h] = append(m[h], i)
		}
		return &bucketIndex{mask: 0, parts: []map[uint64][]int{m}}
	}
	nParts := 1
	for nParts < ctx.parallelism() {
		nParts <<= 1
	}
	if nParts > 64 {
		nParts = 64
	}
	mask := uint64(nParts - 1)
	byMorsel := make([][][]int, len(ranges))
	ctx.runRanges(ranges, func(m, lo, hi int) {
		parts := make([][]int, nParts)
		est := (hi-lo)/nParts + 1
		for i := lo; i < hi; i++ {
			q := hashes[i] & mask
			if parts[q] == nil {
				parts[q] = make([]int, 0, est)
			}
			parts[q] = append(parts[q], i)
		}
		byMorsel[m] = parts
	})
	parts := make([]map[uint64][]int, nParts)
	ctx.runRanges(taskRanges(nParts), func(_, q, _ int) {
		total := 0
		for _, mp := range byMorsel {
			total += len(mp[q])
		}
		mq := make(map[uint64][]int, total)
		for _, mp := range byMorsel {
			for _, i := range mp[q] {
				mq[hashes[i]] = append(mq[hashes[i]], i)
			}
		}
		parts[q] = mq
	})
	return &bucketIndex{mask: mask, parts: parts}
}
