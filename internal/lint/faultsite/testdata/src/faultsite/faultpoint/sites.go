// Package faultpoint is a fixture registry: the analyzer enforces
// unique, non-empty site names here (matched by package base name).
package faultpoint

const (
	SiteA     = "engine.a"
	SiteB     = "engine.b"
	SiteDupA  = "engine.a" // want `fault site "engine.a" already registered`
	SiteEmpty = ""         // want "fault site constant SiteEmpty is empty"
)

func Inject(site string) error   { return nil }
func Arm(site string, after int) {}
func Disarm(site string)         {}
func Hits(site string) int       { return 0 }
