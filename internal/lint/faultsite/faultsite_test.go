package faultsite_test

import (
	"testing"

	"irdb/internal/lint/analysistest"
	"irdb/internal/lint/faultsite"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, faultsite.Analyzer, "faultsite/faultpoint", "faultsite/use")
}
