package ir

import (
	"context"
	"fmt"
	"strconv"

	"irdb/internal/engine"
	"irdb/internal/expr"
	"irdb/internal/stem"
)

// Phrase search uses the token positions of Figure 1's posting lists
// ("the positions at which it appears"): because the store keeps raw
// text, positional matching is just another relational query — one of
// the "custom distance functions" the paper says on-demand indexing
// enables (section 2.1).

// TermDocPosPlan is TermDocPlan keeping token positions:
// (term, docID, pos), materialized.
func TermDocPosPlan(docs engine.Node, p Params) engine.Node {
	tok := &engine.Tokenize{
		Child: docs, IDCol: ColDocID, DataCol: ColData,
		Tok: p.Tokenizer,
	}
	proj := engine.NewProject(tok,
		engine.ProjCol{Name: ColTerm, E: termExpr(p)},
		engine.ProjCol{Name: ColDocID, E: expr.Column(ColDocID)},
		engine.ProjCol{Name: "pos", E: expr.Column("pos")},
	)
	return engine.NewMaterialize(proj)
}

// PhrasePlan matches documents containing the query terms as an exact
// phrase (adjacent positions, in order). It compiles to a chain of
// self-joins over the positional term-document matrix:
//
//	t1.docID = t2.docID AND t2.pos = t1.pos + 1 AND ...
//
// The result is one row per phrase occurrence, (docID, pos) of the first
// term; wrap in a Distinct to get matching documents.
func PhrasePlan(docs engine.Node, p Params, phrase string) (engine.Node, error) {
	terms := p.Tokenizer.Tokens(phrase)
	if len(terms) == 0 {
		return nil, fmt.Errorf("ir: empty phrase")
	}
	stemmed, err := stemAll(terms, p)
	if err != nil {
		return nil, err
	}
	base := TermDocPosPlan(docs, p)

	occurrence := func(term string, idx int) engine.Node {
		sel := engine.NewSelect(base,
			expr.Cmp{Op: expr.Eq, L: expr.Column(ColTerm), R: expr.Str(term)})
		return engine.NewProject(sel,
			engine.ProjCol{Name: ColDocID, E: expr.Column(ColDocID)},
			engine.ProjCol{Name: fmt.Sprintf("pos%d", idx), E: expr.Column("pos")},
		)
	}

	plan := occurrence(stemmed[0], 0)
	for i := 1; i < len(stemmed); i++ {
		next := occurrence(stemmed[i], i)
		// join on docID, then keep only adjacent positions
		joined := engine.NewHashJoin(plan, next,
			[]string{ColDocID}, []string{ColDocID}, engine.JoinLeft)
		plan = engine.NewSelect(joined, expr.Cmp{
			Op: expr.Eq,
			L:  expr.Column(fmt.Sprintf("pos%d", i)),
			R:  expr.Arith{Op: expr.Add, L: expr.Column(fmt.Sprintf("pos%d", i-1)), R: expr.Int(1)},
		})
	}
	return engine.NewProject(plan,
		engine.ProjCol{Name: ColDocID, E: expr.Column(ColDocID)},
		engine.ProjCol{Name: "pos", E: expr.Column("pos0")},
	), nil
}

// SearchPhrase returns the documents containing the exact phrase, with
// the number of occurrences as the certain hit count (probability 1 per
// doc; phrase matching is boolean structured search).
func (s *Searcher) SearchPhrase(c context.Context, phrase string) ([]Hit, error) {
	plan, err := PhrasePlan(s.docs, s.p, phrase)
	if err != nil {
		return nil, err
	}
	counted := engine.NewAggregate(plan, []string{ColDocID},
		[]engine.AggSpec{{Op: engine.CountAll, As: "occurrences"}}, engine.GroupCertain)
	sorted := engine.NewSort(counted,
		engine.SortSpec{Col: "occurrences", Desc: true}, engine.SortSpec{Col: ColDocID})
	rel, err := s.ctx.Exec(c, sorted)
	if err != nil {
		return nil, err
	}
	occIdx := rel.ColIndex("occurrences")
	docIdx := rel.ColIndex(ColDocID)
	hits := make([]Hit, rel.NumRows())
	for i := range hits {
		hits[i] = Hit{
			DocID: rel.Col(docIdx).Vec.Format(i),
			Score: float64parse(rel.Col(occIdx).Vec.Format(i)),
		}
	}
	return hits, nil
}

func stemAll(terms []string, p Params) ([]string, error) {
	st, err := stem.Get(p.Stemmer)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(terms))
	for i, t := range terms {
		out[i] = st.Stem(t)
	}
	return out, nil
}

func float64parse(s string) float64 {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0
	}
	return v
}
