package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"irdb/internal/bench"
	"irdb/internal/catalog"
	"irdb/internal/engine"
	"irdb/internal/triple"
	"irdb/internal/workload"
)

// E2 reproduces the vertical-partitioning discussion of section 2.2: a
// single triples table pays self-join scans on every query; static
// per-property partitioning (Abadi, ref [1]) is fast but must build a
// table per property up front and "is less scalable when the number of
// properties is high" (Sidirourgos, ref [13]); the paper's answer is
// on-demand, query-driven materialization, which pays only for the
// properties actually touched.
func E2(cfg Config) (*Result, error) {
	nSubjects := cfg.size(20000)
	propCounts := []int{8, 32, 128}
	queriesPerRun := cfg.reps(30)
	touchedProps := 4 // queries touch a small working set of properties

	table := &bench.Table{
		Title: "E2: docs-view latency by storage layout (mean per query)",
		Header: []string{"#props", "self-join scan", "static prep", "static hot",
			"on-demand first", "on-demand hot", "cache tables"},
	}

	for _, nProps := range propCounts {
		graph := workload.WidePropertyGraph(nSubjects, nProps, 5000, cfg.Seed)
		rng := rand.New(rand.NewSource(cfg.Seed + int64(nProps)))
		props := make([]string, touchedProps)
		for i := range props {
			props[i] = fmt.Sprintf("prop%06d", 1+rng.Intn(nProps))
		}
		docsPlan := func(prop string) engine.Node {
			return triple.DocsOf(triple.SubjectsOfType("node"), prop)
		}

		// Mode 1: self-join scans, no materialization at all.
		catA := catalog.New(0)
		triple.NewStore(catA).Load(graph)
		ctxA := engine.NewCtx(catA)
		ctxA.Parallelism = cfg.Parallelism
		ctxA.UseCache = false
		qi := 0
		selfJoin, err := bench.Measure(queriesPerRun, func() error {
			_, err := ctxA.Exec(context.Background(), docsPlan(props[qi%len(props)]))
			qi++
			return err
		})
		if err != nil {
			return nil, err
		}

		// Mode 2: static vertical partitioning — materialize every
		// property table up front, then query hot.
		catB := catalog.New(0)
		triple.NewStore(catB).Load(graph)
		ctxB := engine.NewCtx(catB)
		ctxB.Parallelism = cfg.Parallelism
		prep, err := bench.Measure(1, func() error {
			for i := 1; i <= nProps; i++ {
				if _, err := ctxB.Exec(context.Background(), triple.Property(fmt.Sprintf("prop%06d", i))); err != nil {
					return err
				}
			}
			_, err := ctxB.Exec(context.Background(), triple.SubjectsOfType("node"))
			return err
		})
		if err != nil {
			return nil, err
		}
		qi = 0
		staticHot, err := bench.Measure(queriesPerRun, func() error {
			_, err := ctxB.Exec(context.Background(), docsPlan(props[qi%len(props)]))
			qi++
			return err
		})
		if err != nil {
			return nil, err
		}

		// Mode 3: on-demand materialization — cold on first touch of each
		// property, hot afterwards; only touched properties get tables.
		catC := catalog.New(0)
		triple.NewStore(catC).Load(graph)
		ctxC := engine.NewCtx(catC)
		ctxC.Parallelism = cfg.Parallelism
		first := &bench.Latencies{}
		for _, prop := range props {
			l, merr := bench.Measure(1, func() error {
				_, err := ctxC.Exec(context.Background(), docsPlan(prop))
				return err
			})
			if merr != nil {
				return nil, merr
			}
			first.Add(l.Mean())
		}
		qi = 0
		onDemandHot, err := bench.Measure(queriesPerRun, func() error {
			_, err := ctxC.Exec(context.Background(), docsPlan(props[qi%len(props)]))
			qi++
			return err
		})
		if err != nil {
			return nil, err
		}
		table.AddRow(nProps, selfJoin.Mean(), prep.Mean(), staticHot.Mean(),
			first.Mean(), onDemandHot.Mean(), catC.Cache().Len())
	}
	table.AddNote("static prep grows with #props; on-demand pays only for the %d touched properties and reaches static-hot speed", touchedProps)

	return &Result{
		ID:         "E2",
		Name:       "on-demand vertical partitioning (section 2.2)",
		PaperClaim: "per-property tables beat self-joins but static partitioning scales poorly with many properties; adaptive query-driven cache tables give the benefit without the upfront cost",
		Finding:    "on-demand hot latency matches static partitioning while preparation cost is proportional to touched properties, not total properties",
		Tables:     []*bench.Table{table},
	}, nil
}
