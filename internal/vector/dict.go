package vector

import "sort"

// Dict is an order-preserving string dictionary, used for dictionary
// encoding of high-cardinality string columns such as the term dictionary
// of section 2.1 ("termdict") and the subject/object columns of the triple
// store. IDs are dense, start at 0, and are stable for the lifetime of the
// dictionary.
//
// Dict is not safe for concurrent mutation; wrap it or confine it to one
// goroutine while loading.
type Dict struct {
	ids  map[string]int64
	strs []string
}

// NewDict returns an empty dictionary with the given capacity hint.
func NewDict(capacity int) *Dict {
	return &Dict{
		ids:  make(map[string]int64, capacity),
		strs: make([]string, 0, capacity),
	}
}

// Put interns s and returns its ID, allocating a fresh ID on first sight.
func (d *Dict) Put(s string) int64 {
	if id, ok := d.ids[s]; ok {
		return id
	}
	id := int64(len(d.strs))
	d.ids[s] = id
	d.strs = append(d.strs, s)
	return id
}

// Lookup returns the ID of s, or (-1, false) when s has never been interned.
func (d *Dict) Lookup(s string) (int64, bool) {
	id, ok := d.ids[s]
	if !ok {
		return -1, false
	}
	return id, true
}

// Get returns the string for a previously allocated ID.
func (d *Dict) Get(id int64) string { return d.strs[id] }

// Len reports the number of distinct strings interned.
func (d *Dict) Len() int { return len(d.strs) }

// Strings returns a copy of all interned strings in ID order.
func (d *Dict) Strings() []string {
	out := make([]string, len(d.strs))
	copy(out, d.strs)
	return out
}

// SortedStrings returns all interned strings in lexicographic order.
func (d *Dict) SortedStrings() []string {
	out := d.Strings()
	sort.Strings(out)
	return out
}

// Encode interns every value of the string vector and returns the ID column.
func (d *Dict) Encode(v *Strings) *Int64s {
	out := make([]int64, v.Len())
	for i, s := range v.Values() {
		out[i] = d.Put(s)
	}
	return FromInt64s(out)
}

// Decode maps an ID column back to strings.
func (d *Dict) Decode(v *Int64s) *Strings {
	out := make([]string, v.Len())
	for i, id := range v.Values() {
		out[i] = d.strs[id]
	}
	return FromStrings(out)
}
