package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"irdb/internal/bench"
	"irdb/internal/catalog"
	"irdb/internal/engine"
	"irdb/internal/fault"
	"irdb/internal/strategy"
	"irdb/internal/triple"
	"irdb/internal/workload"
)

// E8 measures the executor under the paper's deployment load shape
// (section 3: one shared VM, 150k requests/day): concurrent search
// requests against one shared context, swept over the engine worker-pool
// size. It reports throughput per parallelism level and, separately, the
// cache-stampede behaviour — how many operator executions N concurrent
// identical cold queries cost with single-flight materialization (the
// answer should not scale with N).
func E8(cfg Config) (*Result, error) {
	acfg := workload.DefaultAuctionConfig()
	acfg.Lots = cfg.size(12000)
	acfg.Auctions = acfg.Lots / 320
	if acfg.Auctions < 1 {
		acfg.Auctions = 1
	}
	acfg.Sellers = acfg.Auctions * 2
	acfg.Seed = cfg.Seed
	graph := workload.AuctionGraph(acfg)

	queries := workload.Queries(cfg.reps(12), 3, acfg.VocabSize, cfg.Seed+11)
	st := strategy.Auction(0.7, 0.3)
	clients := 8
	if cfg.Quick {
		clients = 4
	}

	searchOnce := func(ctx *engine.Ctx, q string) error {
		plan, err := st.CompileOptimized(&strategy.Compiler{Query: q}, ctx)
		if err != nil {
			return err
		}
		_, err = ctx.Exec(context.Background(), engine.NewTopN(plan, 50,
			engine.SortSpec{Col: "", Desc: true}, engine.SortSpec{Col: triple.ColSubject}))
		return err
	}

	// Throughput sweep: `clients` goroutines hammer one shared, pre-warmed
	// context; only the engine worker-pool size varies between rows.
	levels := []int{1, 2, runtime.NumCPU()}
	if runtime.NumCPU() <= 2 {
		levels = []int{1, 2}
	}
	type row struct {
		par  int
		wall time.Duration
		p95  time.Duration
		qps  float64
	}
	rows := make([]row, 0, len(levels))
	for _, p := range levels {
		cat := catalog.New(0)
		triple.NewStore(cat).Load(graph)
		ctx := engine.NewCtx(cat)
		ctx.Parallelism = p
		if err := searchOnce(ctx, queries[0]); err != nil { // warm branch indexes
			return nil, err
		}
		lat, wall, err := bench.MeasureConcurrent(clients, len(queries), func(c, i int) error {
			return searchOnce(ctx, queries[(c+i)%len(queries)])
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, row{par: p, wall: wall, p95: lat.P(0.95),
			qps: float64(clients*len(queries)) / wall.Seconds()})
	}

	through := &bench.Table{
		Title:  fmt.Sprintf("E8: %d concurrent clients, %d lots, shared ctx", clients, acfg.Lots),
		Header: []string{"parallelism", "wall", "p95", "qps", "speedup"},
	}
	for _, r := range rows {
		through.AddRow(r.par, r.wall, r.p95, fmt.Sprintf("%.1f", r.qps),
			fmt.Sprintf("%.2fx", r.qps/rows[0].qps))
	}
	through.AddNote("identical result sets at every parallelism level (see engine equivalence suite)")

	// Saturation sweep: the worker pool is held fixed while the offered
	// load (client count) grows past it. With admission bounded by the
	// pool, the p99-vs-load curve should bend at saturation — latency
	// grows linearly with queueing — instead of collapsing.
	clientLevels := []int{1, 2, 4, 8, 16}
	if cfg.Quick {
		clientLevels = []int{1, 2, 4}
	}
	satPar := cfg.Parallelism
	if satPar <= 0 {
		satPar = runtime.NumCPU()
	}
	saturation := &bench.Table{
		Title:  fmt.Sprintf("E8: saturation curve, %d workers, offered load sweep", satPar),
		Header: []string{"clients", "wall", "p50", "p99", "qps"},
	}
	for _, nc := range clientLevels {
		cat := catalog.New(0)
		triple.NewStore(cat).Load(graph)
		ctx := engine.NewCtx(cat)
		ctx.Parallelism = satPar
		if err := searchOnce(ctx, queries[0]); err != nil {
			return nil, err
		}
		lat, wall, err := bench.MeasureConcurrent(nc, len(queries), func(c, i int) error {
			return searchOnce(ctx, queries[(c+i)%len(queries)])
		})
		if err != nil {
			return nil, err
		}
		saturation.AddRow(nc, wall, lat.P(0.50), lat.P(0.99),
			fmt.Sprintf("%.1f", float64(nc*len(queries))/wall.Seconds()))
	}
	saturation.AddNote("p99 vs offered load: past pool saturation throughput flattens and latency queues predictably")

	// Stampede: N goroutines fire the same cold query at once. With
	// single-flight the shared sub-plans are computed once, so NodeExecs
	// stays near one query's node count instead of N times it.
	stampede := &bench.Table{
		Title:  "E8: cache stampede, identical cold query from N goroutines",
		Header: []string{"goroutines", "node execs", "flight joins"},
	}
	for _, n := range []int{1, clients} {
		cat := catalog.New(0)
		triple.NewStore(cat).Load(graph)
		ctx := engine.NewCtx(cat)
		ctx.Parallelism = cfg.Parallelism
		var wg sync.WaitGroup
		errs := make([]error, n)
		for g := 0; g < n; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				// Contain panics at the goroutine boundary; a crashed
				// stampeder reports as its error slot.
				defer fault.Recover(fmt.Sprintf("stampede goroutine %d", g), &errs[g])
				errs[g] = searchOnce(ctx, queries[0])
			}(g)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		stampede.AddRow(n, ctx.NodeExecs(), cat.Cache().Stats().Shared)
	}

	last := rows[len(rows)-1]
	return &Result{
		ID:         "E8",
		Name:       "concurrent execution and single-flight materialization",
		PaperClaim: "a single shared VM serves 150,000 requests/day off one materialization cache; the engine should use all cores without changing any result",
		Finding: fmt.Sprintf("%d workers serve %.1f qps vs %.1f qps single-worker (%.2fx) under %d concurrent clients",
			last.par, last.qps, rows[0].qps, last.qps/rows[0].qps, clients),
		Tables: []*bench.Table{through, saturation, stampede},
	}, nil
}
