// Package vector mirrors the pre-sized constructor surface the analyzer
// treats as a full-footprint allocation.
package vector

func NewSizedInts(n int) []int64 { return make([]int64, n) }
