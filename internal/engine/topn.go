package engine

import (
	"context"
	"sort"

	"irdb/internal/relation"
)

// Parallel sort and TopN selection.
//
// The serial definition of both operators is the stable-sort permutation
// relation.SortedSel (TopN keeps its first n entries). Breaking comparison
// ties on the original row index turns that stable ordering into a strict
// total order, which makes the permutation reproducible piecewise: each
// morsel sorts (or, for TopN, bounded-heap-selects) its own rows and a
// k-way merge of the per-morsel runs yields exactly SortedSel(keys) — the
// same permutation at every parallelism, because a strict total order has
// exactly one sorted sequence regardless of how the input was split.

// sortRunRows caps one sort run. Bounding runs (instead of splitting
// only per worker) serves two ends: sorting k runs of n/k rows plus a
// k-way merge beats one big stable sort even serially (each run's
// comparisons are cheaper), and runs beyond the worker count execute
// inline between cancellation checks, so a cancelled ORDER BY stops
// within one run's worth of work instead of finishing every morsel
// already dispatched. The merged permutation is identical for every
// decomposition (the tie-broken order is strict), so results stay
// bit-identical regardless.
const sortRunRows = 64 * 1024

// sortRanges splits [0, n) into sort runs: one per worker when that
// keeps runs small (so mid-size TopN/Sort still uses the whole pool),
// capped at sortRunRows for cancellation granularity, floored at
// minMorsel so tiny inputs stay serial.
func (ctx *Ctx) sortRanges(n int) [][2]int {
	if n == 0 {
		return nil
	}
	size := (n + ctx.parallelism() - 1) / ctx.parallelism()
	if size > sortRunRows {
		size = sortRunRows
	}
	if size < minMorsel {
		size = minMorsel
	}
	if n <= size {
		return [][2]int{{0, n}}
	}
	out := make([][2]int, 0, (n+size-1)/size) //lint:allow chargedalloc O(rows/run-size) range bookkeeping, ~1/1000th of the charged runs
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// sortSel returns in.SortedSel(keys) computed with per-run stable sorts
// plus the same k-way merge TopN uses. Unlike topNSel it keeps every row:
// ORDER BY without LIMIT scales the same way TopN does. The sort runs
// plus the merged permutation (16 bytes per row) are charged against the
// query's memory budget before any run is dispatched.
func sortSel(c context.Context, ctx *Ctx, in *relation.Relation, keys []relation.SortKey) ([]int, error) {
	total := in.NumRows()
	if err := ctx.charge(c, int64(total)*16); err != nil {
		return nil, err
	}
	ranges := ctx.sortRanges(total)
	if len(ranges) <= 1 {
		return in.SortedSel(keys), nil
	}
	less := func(i, j int) bool {
		if c := in.CompareRows(keys, i, j); c != 0 {
			return c < 0
		}
		return i < j // stable-sort tie-break: original row order
	}
	runs := make([][]int, len(ranges))
	ctx.runRanges(c, ranges, func(m, lo, hi int) {
		runs[m] = in.SortedSelRange(keys, lo, hi)
	})
	return mergeRuns(c, less, runs, total), nil
}

// topNSel returns the first n entries of in.SortedSel(keys), computed with
// per-morsel partial selection plus a k-way merge when worker slots allow.
// The returned permutation prefix is bit-identical at every parallelism.
func topNSel(c context.Context, ctx *Ctx, in *relation.Relation, keys []relation.SortKey, n int) ([]int, error) {
	total := in.NumRows()
	if n > total {
		n = total
	}
	if n <= 0 {
		return []int{}, nil
	}
	less := func(i, j int) bool {
		if c := in.CompareRows(keys, i, j); c != 0 {
			return c < 0
		}
		return i < j // stable-sort tie-break: original row order
	}
	ranges := ctx.sortRanges(total)
	if len(ranges) <= 1 {
		// The single-run path sorts the full permutation (8 bytes/row).
		if err := ctx.charge(c, int64(total)*8); err != nil {
			return nil, err
		}
		return in.SortedSel(keys)[:n:n], nil
	}
	// Each run's bounded heap keeps at most n rows; budget the runs plus
	// the merged prefix before dispatch.
	if err := ctx.charge(c, int64(len(ranges)+1)*int64(n)*8); err != nil {
		return nil, err
	}
	runs := make([][]int, len(ranges))
	ctx.runRanges(c, ranges, func(m, lo, hi int) {
		runs[m] = topOfRange(less, lo, hi, n)
	})
	return mergeRuns(c, less, runs, n), nil
}

// topOfRange returns the min(n, hi-lo) smallest rows of [lo, hi) under
// less, in ascending order. It maintains a bounded max-heap of the best n
// rows seen — O(m log n) instead of the O(m log m) full sort — and sorts
// only the survivors.
func topOfRange(less func(i, j int) bool, lo, hi, n int) []int {
	if m := hi - lo; n > m {
		n = m
	}
	h := make([]int, 0, n)
	for i := lo; i < hi; i++ {
		if len(h) < n {
			// Sift up: the root holds the worst kept row.
			h = append(h, i)
			for c := len(h) - 1; c > 0; {
				p := (c - 1) / 2
				if !less(h[p], h[c]) {
					break
				}
				h[p], h[c] = h[c], h[p]
				c = p
			}
			continue
		}
		if !less(i, h[0]) {
			continue
		}
		// Replace the worst kept row and sift down.
		h[0] = i
		for p := 0; ; {
			c := 2*p + 1
			if c >= n {
				break
			}
			if c+1 < n && less(h[c], h[c+1]) {
				c++
			}
			if !less(h[p], h[c]) {
				break
			}
			h[p], h[c] = h[c], h[p]
			p = c
		}
	}
	sort.Slice(h, func(a, b int) bool { return less(h[a], h[b]) })
	return h
}

// mergeRuns k-way merges ascending runs under less and returns the first n
// merged values. Run heads are kept in a min-heap keyed by less. The merge
// checks cancellation every few thousand pops — a merge over millions of
// rows is itself a long serial loop — and returns its partial output,
// which the caller discards once it sees the cancelled context.
func mergeRuns(c context.Context, less func(i, j int) bool, runs [][]int, n int) []int {
	type head struct {
		run, pos int
	}
	// lessHead orders heap entries by their current run value.
	lessHead := func(a, b head) bool { return less(runs[a.run][a.pos], runs[b.run][b.pos]) }
	h := make([]head, 0, len(runs))
	for r, run := range runs {
		if len(run) == 0 {
			continue
		}
		h = append(h, head{run: r})
		for c := len(h) - 1; c > 0; {
			p := (c - 1) / 2
			if !lessHead(h[c], h[p]) {
				break
			}
			h[p], h[c] = h[c], h[p]
			c = p
		}
	}
	out := make([]int, 0, n)
	for len(h) > 0 && len(out) < n {
		if len(out)&0x1fff == 0x1fff && c.Err() != nil {
			return out
		}
		top := h[0]
		out = append(out, runs[top.run][top.pos])
		if top.pos+1 < len(runs[top.run]) {
			h[0] = head{run: top.run, pos: top.pos + 1}
		} else {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		for p := 0; ; {
			c := 2*p + 1
			if c >= len(h) {
				break
			}
			if c+1 < len(h) && lessHead(h[c+1], h[c]) {
				c++
			}
			if !lessHead(h[c], h[p]) {
				break
			}
			h[p], h[c] = h[c], h[p]
			p = c
		}
	}
	return out
}
