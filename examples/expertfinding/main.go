// Expertfinding demonstrates one of the complex search tasks motivating
// the paper's introduction ("expert finding", references [7] and [2]):
// find the people most knowledgeable about a topic, given only documents
// they authored.
//
// The strategy is pure composition of the same blocks as the other
// examples — rank documents by the query, then traverse the authorship
// edge backwards so the scores propagate from documents to people; people
// accumulate evidence from all their matching documents through the
// disjoint mix.
//
// Run with: go run ./examples/expertfinding
package main

import (
	"context"
	"fmt"
	"log"

	"irdb/internal/catalog"
	"irdb/internal/engine"
	"irdb/internal/relation"
	"irdb/internal/strategy"
	"irdb/internal/triple"
)

func main() {
	cat := catalog.New(0)
	store := triple.NewStore(cat)
	store.Load(graph())
	ctx := engine.NewCtx(cat)

	// Strategy: documents of type report, ranked by the query, then
	// authoredBy traversal propagates document scores to their authors;
	// duplicate author hits combine.
	expertStrategy := &strategy.Strategy{
		Name: "expert-finding",
		Blocks: []strategy.Block{
			{ID: "reports", Type: "select-type", Params: map[string]any{"type": "report"}},
			{ID: "texts", Type: "extract-text",
				Params: map[string]any{"property": "abstract"}, Inputs: []string{"reports"}},
			{ID: "rank", Type: "rank-text",
				Params: map[string]any{"model": "bm25"}, Inputs: []string{"texts"}},
			{ID: "authors", Type: "traverse",
				Params: map[string]any{"property": "authoredBy", "direction": "forward"},
				Inputs: []string{"rank"}},
			{ID: "top", Type: "top-k", Params: map[string]any{"k": 5.0}, Inputs: []string{"authors"}},
		},
		Output: "top",
	}

	for _, query := range []string{
		"column store compression",
		"probabilistic ranking retrieval",
	} {
		plan, err := expertStrategy.Compile(&strategy.Compiler{Query: query})
		if err != nil {
			log.Fatal(err)
		}
		rel, err := ctx.Exec(context.Background(), plan)
		if err != nil {
			log.Fatal(err)
		}
		// The traversal yields one row per (matched report, author);
		// collapse to experts, combining evidence from independent
		// reports by noisy-or.
		experts, err := ctx.Exec(context.Background(), engine.NewSort(
			engine.NewDistinct(engine.NewValues("experts:"+query, rel), engine.GroupIndependent),
			engine.SortSpec{Col: "", Desc: true}, engine.SortSpec{Col: triple.ColSubject}))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("experts for %q:\n", query)
		printExperts(ctx, experts)
		fmt.Println()
	}
}

func printExperts(ctx *engine.Ctx, experts *relation.Relation) {
	names, err := ctx.Exec(context.Background(), triple.Property("name"))
	if err != nil {
		log.Fatal(err)
	}
	nameOf := map[string]string{}
	for i := 0; i < names.NumRows(); i++ {
		nameOf[names.Col(0).Vec.Format(i)] = names.Col(1).Vec.Format(i)
	}
	for i := 0; i < experts.NumRows(); i++ {
		id := experts.Col(0).Vec.Format(i)
		fmt.Printf("  %d. %-22s evidence=%.4f\n", i+1, nameOf[id], experts.Prob()[i])
	}
}

// graph builds a small bibliographic knowledge graph: researchers and
// the technical reports they authored (multi-author edges included).
func graph() []triple.Triple {
	str := triple.String
	t := func(s, p string, o string) triple.Triple {
		return triple.Triple{Subject: s, Property: p, Obj: str(o)}
	}
	return []triple.Triple{
		t("alice", "type", "person"), t("alice", "name", "Alice Fern"),
		t("bob", "type", "person"), t("bob", "name", "Bob Marsh"),
		t("carol", "type", "person"), t("carol", "name", "Carol Diaz"),
		t("dan", "type", "person"), t("dan", "name", "Dan Oduya"),

		t("r1", "type", "report"),
		t("r1", "abstract", "vectorized execution in a column store database engine"),
		t("r1", "authoredBy", "alice"),
		t("r2", "type", "report"),
		t("r2", "abstract", "lightweight compression schemes for column store storage"),
		t("r2", "authoredBy", "alice"),
		t("r2", "authoredBy", "bob"),
		t("r3", "type", "report"),
		t("r3", "abstract", "probabilistic relational algebra for ranking search results"),
		t("r3", "authoredBy", "carol"),
		t("r4", "type", "report"),
		t("r4", "abstract", "retrieval models and probabilistic inference for text search"),
		t("r4", "authoredBy", "carol"),
		t("r4", "authoredBy", "dan"),
		t("r5", "type", "report"),
		t("r5", "abstract", "compression of inverted lists in retrieval systems"),
		t("r5", "authoredBy", "bob"),
	}
}
