package engine

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"irdb/internal/relation"
	"irdb/internal/vector"
)

// dupRel builds a relation whose sort keys are heavily duplicated, so the
// original-index tie-break does real work: a tiny int domain, a 3-value
// string column and probabilities quantized to quarters.
func dupRel(r *rand.Rand, n int) *relation.Relation {
	a := make([]int64, n)
	b := make([]string, n)
	p := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = int64(r.Intn(5))
		b[i] = fmt.Sprintf("s%d", r.Intn(3))
		p[i] = float64(r.Intn(4)) / 4
	}
	return relation.MustFromColumns([]relation.Column{
		{Name: "a", Vec: vector.FromInt64s(a)},
		{Name: "b", Vec: vector.FromStrings(b)},
	}, p)
}

// TestTopNSelDeterminism is the property test for the parallel TopN path:
// over randomized duplicate-heavy inputs, every (keys, n, parallelism)
// combination must return exactly the first n entries of the serial stable
// sort's permutation — the same rows, in the same order, at parallelism 1,
// 2 and 8.
func TestTopNSelDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for _, rows := range []int{100, 2*minMorsel + 123, 20000} {
		in := dupRel(r, rows)
		keySets := [][]relation.SortKey{
			{{Col: relation.ProbCol, Desc: true}, {Col: 0}},
			{{Col: 0}, {Col: 1, Desc: true}},
			{{Col: 1}},
			{{Col: relation.ProbCol}},
		}
		for ki, keys := range keySets {
			want := in.SortedSel(keys)
			for _, n := range []int{0, 1, 10, 500, rows / 2, rows, rows + 17} {
				capped := n
				if capped > rows {
					capped = rows
				}
				for _, par := range []int{1, 2, 8} {
					ctx := &Ctx{Parallelism: par}
					got, err := topNSel(context.Background(), ctx, in, keys, n)
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != capped {
						t.Fatalf("rows=%d keys=%d n=%d par=%d: len = %d, want %d",
							rows, ki, n, par, len(got), capped)
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("rows=%d keys=%d n=%d par=%d: position %d = row %d, want %d",
								rows, ki, n, par, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestBuildBucketsMatchesSerial checks the partitioned build produces the
// same bucket contents, in the same (ascending row) order, as the serial
// single-map build at any parallelism.
func TestBuildBucketsMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for _, n := range []int{0, 100, 2*minMorsel + 7, 30000} {
		hashes := make([]uint64, n)
		for i := range hashes {
			hashes[i] = uint64(r.Intn(997)) * 0x9e3779b97f4a7c15 // duplicate-heavy
		}
		serial, _ := buildBuckets(context.Background(), &Ctx{Parallelism: 1}, hashes)
		for _, par := range []int{2, 8} {
			idx, _ := buildBuckets(context.Background(), &Ctx{Parallelism: par}, hashes)
			for _, h := range hashes {
				a, b := serial.lookup(h), idx.lookup(h)
				if len(a) != len(b) {
					t.Fatalf("n=%d par=%d hash %x: %d rows, want %d", n, par, h, len(b), len(a))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("n=%d par=%d hash %x: row order %v, want %v", n, par, h, b, a)
					}
				}
			}
		}
	}
}

// TestGroupRowsParallelMatchesSerial checks the two-phase grouping hands
// out identical group ids and first rows as the serial first-appearance
// loop.
func TestGroupRowsParallelMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for _, n := range []int{0, 50, 2*minMorsel + 11, 25000} {
		in := dupRel(r, n)
		for _, gIdx := range [][]int{{0}, {0, 1}, {}} {
			wantOf, wantFirst := groupRows(context.Background(), &Ctx{Parallelism: 1}, in, gIdx)
			for _, par := range []int{2, 8} {
				gotOf, gotFirst := groupRows(context.Background(), &Ctx{Parallelism: par}, in, gIdx)
				if len(gotFirst) != len(wantFirst) {
					t.Fatalf("n=%d gIdx=%v par=%d: %d groups, want %d",
						n, gIdx, par, len(gotFirst), len(wantFirst))
				}
				for g := range wantFirst {
					if gotFirst[g] != wantFirst[g] {
						t.Fatalf("n=%d gIdx=%v par=%d: group %d first row %d, want %d",
							n, gIdx, par, g, gotFirst[g], wantFirst[g])
					}
				}
				for i := range wantOf {
					if gotOf[i] != wantOf[i] {
						t.Fatalf("n=%d gIdx=%v par=%d: row %d group %d, want %d",
							n, gIdx, par, i, gotOf[i], wantOf[i])
					}
				}
			}
		}
	}
}

// TestGatherParallelMatchesSerial checks the write-at-offset Gather equals
// relation.Gather bit for bit.
func TestGatherParallelMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	in := dupRel(r, 9000)
	sel := make([]int, 3*minMorsel+77)
	for i := range sel {
		sel[i] = r.Intn(in.NumRows())
	}
	want := in.Gather(sel)
	for _, par := range []int{1, 2, 8} {
		got, err := gatherParallel(context.Background(), &Ctx{Parallelism: par}, in, sel)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualRel(t, want, got, fmt.Sprintf("gatherParallel par=%d", par))
	}
}
