package engine

import (
	"fmt"
	"hash/maphash"
	"math/rand"
	"testing"

	"irdb/internal/catalog"
	"irdb/internal/expr"
	"irdb/internal/relation"
	"irdb/internal/vector"
)

// benchRelation builds an n-row (k string, v int64) relation with nKeys
// distinct keys.
func benchRelation(n, nKeys int) *relation.Relation {
	keys := make([]string, n)
	vals := make([]int64, n)
	for i := 0; i < n; i++ {
		keys[i] = fmt.Sprintf("k%06d", i%nKeys)
		vals[i] = int64(i)
	}
	return relation.MustFromColumns([]relation.Column{
		{Name: "k", Vec: vector.FromStrings(keys)},
		{Name: "v", Vec: vector.FromInt64s(vals)},
	}, nil)
}

func benchCtx(n, nKeys int) *Ctx {
	cat := catalog.New(0)
	cat.Put("t", benchRelation(n, nKeys))
	cat.Put("dict", benchRelation(nKeys, nKeys))
	return NewCtx(cat)
}

func BenchmarkSelect(b *testing.B) {
	ctx := benchCtx(100000, 1000)
	plan := NewSelect(NewScan("t"),
		expr.Cmp{Op: expr.Eq, L: expr.Column("k"), R: expr.Str("k000007")})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.Exec(plan); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashJoinManyToOne(b *testing.B) {
	ctx := benchCtx(100000, 1000)
	plan := NewHashJoin(NewScan("t"), NewScan("dict"),
		[]string{"k"}, []string{"k"}, JoinLeft)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.Exec(plan); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashJoinCachedIndex(b *testing.B) {
	ctx := benchCtx(100000, 1000)
	plan := NewHashJoin(NewScan("t"), NewMaterialize(NewScan("dict")),
		[]string{"k"}, []string{"k"}, JoinLeft)
	if _, err := ctx.Exec(plan); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.Exec(plan); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAggregateHighCardinality(b *testing.B) {
	ctx := benchCtx(100000, 50000)
	plan := NewAggregate(NewScan("t"), []string{"k"},
		[]AggSpec{{Op: CountAll, As: "n"}, {Op: Sum, Col: "v", As: "s"}}, GroupCertain)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.Exec(plan); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAggregateLowCardinality(b *testing.B) {
	ctx := benchCtx(100000, 16)
	plan := NewAggregate(NewScan("t"), []string{"k"},
		[]AggSpec{{Op: CountAll, As: "n"}}, GroupIndependent)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.Exec(plan); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopN(b *testing.B) {
	ctx := benchCtx(100000, 100000)
	plan := NewTopN(NewScan("t"), 10, SortSpec{Col: "v", Desc: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.Exec(plan); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Morsel-parallel materialization microbenchmarks: each pair compares the
// serial legacy path against the write-at-offset parallel path at 8
// workers, on E8-shaped data (string key + numeric columns + random
// probabilities).

// matRel builds the materialization benchmark input: n rows of (k string,
// v int64, x float64) with nKeys distinct keys and random probabilities.
func matRel(n, nKeys int) *relation.Relation {
	r := rand.New(rand.NewSource(42))
	keys := make([]string, n)
	vals := make([]int64, n)
	xs := make([]float64, n)
	ps := make([]float64, n)
	for i := 0; i < n; i++ {
		keys[i] = fmt.Sprintf("k%06d", r.Intn(nKeys))
		vals[i] = int64(r.Intn(1 << 30))
		xs[i] = r.Float64()
		ps[i] = r.Float64()
	}
	return relation.MustFromColumns([]relation.Column{
		{Name: "k", Vec: vector.FromStrings(keys)},
		{Name: "v", Vec: vector.FromInt64s(vals)},
		{Name: "x", Vec: vector.FromFloat64s(xs)},
	}, ps)
}

func shuffledSel(n int) []int {
	r := rand.New(rand.NewSource(43))
	sel := r.Perm(n)
	return sel
}

const matRows = 400000

func BenchmarkGatherSerial(b *testing.B) {
	rel := matRel(matRows, 20000)
	sel := shuffledSel(matRows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rel.Gather(sel)
	}
}

func BenchmarkGatherParallel8(b *testing.B) {
	rel := matRel(matRows, 20000)
	sel := shuffledSel(matRows)
	ctx := &Ctx{Parallelism: 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gatherParallel(ctx, rel, sel)
	}
}

var topNKeys = []relation.SortKey{{Col: relation.ProbCol, Desc: true}, {Col: 0}}

func BenchmarkTopNFullSort(b *testing.B) {
	rel := matRel(matRows, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rel.SortedSel(topNKeys)[:50]
	}
}

// BenchmarkTopNSerialFallback measures topNSel at parallelism 1, which
// takes the single-morsel fallback (a full SortedSel) — it should match
// BenchmarkTopNFullSort, not the heap-and-merge path that TopNMerge8
// exercises.
func BenchmarkTopNSerialFallback(b *testing.B) {
	rel := matRel(matRows, 20000)
	ctx := &Ctx{Parallelism: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topNSel(ctx, rel, topNKeys, 50)
	}
}

func BenchmarkTopNMerge8(b *testing.B) {
	rel := matRel(matRows, 20000)
	ctx := &Ctx{Parallelism: 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topNSel(ctx, rel, topNKeys, 50)
	}
}

func benchJoinBuild(b *testing.B, par int) {
	rel := matRel(matRows, 20000)
	ctx := &Ctx{Parallelism: par}
	hashes := hashRowsParallel(ctx, rel, maphash.MakeSeed(), []int{0})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buildBuckets(ctx, hashes)
	}
}

func BenchmarkJoinBuildSerial(b *testing.B)    { benchJoinBuild(b, 1) }
func BenchmarkJoinBuildParallel8(b *testing.B) { benchJoinBuild(b, 8) }

func benchGroupRows(b *testing.B, par int) {
	rel := matRel(matRows, 20000)
	ctx := &Ctx{Parallelism: par}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		groupRows(ctx, rel, []int{0})
	}
}

func BenchmarkGroupRowsSerial(b *testing.B)    { benchGroupRows(b, 1) }
func BenchmarkGroupRowsParallel8(b *testing.B) { benchGroupRows(b, 8) }

func benchConcat(b *testing.B, par int) {
	parts := make([]*relation.Relation, 8)
	for i := range parts {
		parts[i] = matRel(matRows/8, 20000)
	}
	ctx := &Ctx{Parallelism: par}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := concatAll(ctx, parts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConcatSerial(b *testing.B)    { benchConcat(b, 1) }
func BenchmarkConcatParallel8(b *testing.B) { benchConcat(b, 8) }

func BenchmarkNormalizeGrouped(b *testing.B) {
	ctx := benchCtx(100000, 1000)
	plan := NewNormalize(NewScan("t"), []int{0}, NormSum)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.Exec(plan); err != nil {
			b.Fatal(err)
		}
	}
}
