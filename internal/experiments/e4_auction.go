package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"irdb/internal/bench"
	"irdb/internal/catalog"
	"irdb/internal/engine"
	"irdb/internal/fault"
	"irdb/internal/ir"
	"irdb/internal/strategy"
	"irdb/internal/triple"
	"irdb/internal/workload"
)

// E4 reproduces the section 3 deployment numbers: the two-branch auction
// strategy of Figure 3 "searches about 8 million lots in 25 thousand
// auctions, 150,000 times per day (with peaks of 450 per minute) with
// response times of about 150ms per request (hot database)". We run the
// same strategy over a generated auction graph with the paper's
// lots-per-auction shape, measure hot per-request latency and sustainable
// throughput (sequential and with concurrent clients), and relate complex
// strategy latency to plain keyword search latency (the paper pair:
// 150ms vs 20ms ≈ 7.5×).
func E4(cfg Config) (*Result, error) {
	acfg := workload.DefaultAuctionConfig()
	acfg.Lots = cfg.size(16000)
	acfg.Auctions = acfg.Lots / 320 // the paper's ratio
	if acfg.Auctions < 1 {
		acfg.Auctions = 1
	}
	acfg.Sellers = acfg.Auctions * 2
	acfg.Seed = cfg.Seed
	graph := workload.AuctionGraph(acfg)

	cat := catalog.New(0)
	triple.NewStore(cat).Load(graph)
	ctx := engine.NewCtx(cat)
	ctx.Parallelism = cfg.Parallelism

	queries := workload.Queries(cfg.reps(20), 3, acfg.VocabSize, cfg.Seed+5)
	strat := strategy.Auction(0.7, 0.3)

	runQuery := func(q string) error {
		plan, err := strat.CompileOptimized(&strategy.Compiler{Query: q}, ctx)
		if err != nil {
			return err
		}
		_, err = ctx.Exec(context.Background(), engine.NewTopN(plan, 50, engine.SortSpec{Col: "", Desc: true},
			engine.SortSpec{Col: triple.ColSubject}))
		return err
	}

	// Cold: the first request pays all on-demand index construction.
	cold, err := bench.Measure(1, func() error { return runQuery(queries[0]) })
	if err != nil {
		return nil, err
	}
	// Hot: the paper's reported regime ("hot database").
	qi := 0
	hot, err := bench.Measure(len(queries), func() error {
		err := runQuery(queries[qi%len(queries)])
		qi++
		return err
	})
	if err != nil {
		return nil, err
	}

	// Concurrent clients (the 450-requests-per-minute peak is concurrent
	// load on one VM).
	const clients = 4
	perClient := len(queries)
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Contain panics at the goroutine boundary; a crashed client
			// reports as its error slot, not a dead process.
			defer fault.Recover(fmt.Sprintf("e4 client %d", c), &errs[c])
			for i := 0; i < perClient; i++ {
				if err := runQuery(queries[(c*7+i)%len(queries)]); err != nil {
					errs[c] = err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	concurrentQPS := float64(clients*perClient) / time.Since(start).Seconds()

	// Baseline: plain keyword search over lot descriptions alone.
	searcher, err := ir.NewSearcher(ctx,
		triple.DocsOf(triple.SubjectsOfType("lot"), "description"), ir.DefaultParams())
	if err != nil {
		return nil, err
	}
	if _, err := searcher.Search(context.Background(), queries[0], 10); err != nil {
		return nil, err
	}
	qi = 0
	simple, err := bench.Measure(len(queries), func() error {
		_, err := searcher.Search(context.Background(), queries[qi%len(queries)], 10)
		qi++
		return err
	})
	if err != nil {
		return nil, err
	}

	ratio := float64(hot.P(0.5)) / float64(simple.P(0.5))

	table := &bench.Table{
		Title:  fmt.Sprintf("E4: Figure 3 auction strategy, %d lots / %d auctions", acfg.Lots, acfg.Auctions),
		Header: []string{"measure", "value"},
	}
	table.AddRow("cold first request", cold.Mean())
	table.AddRow("hot p50", hot.P(0.5))
	table.AddRow("hot p95", hot.P(0.95))
	table.AddRow("sequential qps", fmt.Sprintf("%.1f", hot.Throughput()))
	table.AddRow(fmt.Sprintf("concurrent qps (%d clients)", clients), fmt.Sprintf("%.1f", concurrentQPS))
	table.AddRow("plain keyword p50 (lot descriptions)", simple.P(0.5))
	table.AddRow("complex/simple latency ratio", fmt.Sprintf("%.1fx", ratio))
	table.AddNote("paper: ~150ms per request at 8M lots, 150k req/day (avg 1.7/s, peak 7.5/s); complex/simple ≈ 7.5x (150ms vs 20ms)")

	return &Result{
		ID:         "E4",
		Name:       "auction strategy end to end (section 3)",
		PaperClaim: "the production two-branch strategy answers in ~150ms hot and sustains 150k requests/day with peaks of 450/minute on one VM",
		Finding: fmt.Sprintf("hot p50 %s, concurrent throughput %.1f req/s (paper peak: 7.5 req/s), complex/simple ratio %.1fx (paper ≈ 7.5x)",
			bench.Ms(hot.P(0.5)), concurrentQPS, ratio),
		Tables: []*bench.Table{table},
	}, nil
}
