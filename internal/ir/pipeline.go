package ir

import (
	"fmt"

	"irdb/internal/engine"
	"irdb/internal/expr"
	"irdb/internal/relation"
	"irdb/internal/vector"
)

// Column names used throughout the pipeline, matching the paper's views.
const (
	ColDocID  = "docID"
	ColData   = "data"
	ColTerm   = "term"
	ColTermID = "termID"
	ColTF     = "tf"
	ColDF     = "df"
	ColIDF    = "idf"
	ColLen    = "len"
	ColWeight = "w"
	ColScore  = "score"
)

// termExpr is the paper's "stem(lcase(token),'sb-english')".
func termExpr(p Params) expr.Expr {
	return expr.NewCall("stem", expr.NewCall("lcase", expr.Column("token")), expr.Str(p.Stemmer))
}

// TermDocPlan mirrors the paper's term_doc view:
//
//	CREATE VIEW term_doc AS
//	SELECT stem(lcase(token),'sb-english') as term, docID
//	FROM tokenize( (SELECT docID, data FROM docs) );
//
// The result is materialized — it is query-independent.
func TermDocPlan(docs engine.Node, p Params) engine.Node {
	tok := &engine.Tokenize{
		Child: docs, IDCol: ColDocID, DataCol: ColData,
		Tok: p.Tokenizer, WithCompounds: p.WithCompounds,
	}
	proj := engine.NewProject(tok,
		engine.ProjCol{Name: ColTerm, E: termExpr(p)},
		engine.ProjCol{Name: ColDocID, E: expr.Column(ColDocID)},
	)
	return engine.NewMaterialize(proj)
}

// DocLenPlan mirrors doc_len: document lengths in tokens.
func DocLenPlan(docs engine.Node, p Params) engine.Node {
	agg := engine.NewAggregate(TermDocPlan(docs, p), []string{ColDocID},
		[]engine.AggSpec{{Op: engine.CountAll, As: ColLen}}, engine.GroupCertain)
	return engine.NewMaterialize(agg)
}

// TermDictPlan mirrors termdict: distinct terms with dense integer IDs
// assigned by row_number() over a sorted term list (sorting makes IDs
// deterministic across runs).
func TermDictPlan(docs engine.Node, p Params) engine.Node {
	distinct := engine.NewDistinct(
		engine.NewProject(TermDocPlan(docs, p), engine.ProjCol{Name: ColTerm, E: expr.Column(ColTerm)}),
		engine.GroupCertain)
	sorted := engine.NewSort(distinct, engine.SortSpec{Col: ColTerm})
	return engine.NewMaterialize(engine.NewRowNumber(sorted, ColTermID))
}

// TFPlan mirrors tf: integer term frequencies per (termID, docID), built
// by joining term_doc with termdict and counting.
func TFPlan(docs engine.Node, p Params) engine.Node {
	join := engine.NewHashJoin(
		TermDocPlan(docs, p), TermDictPlan(docs, p),
		[]string{ColTerm}, []string{ColTerm}, engine.JoinLeft)
	agg := engine.NewAggregate(join, []string{ColTermID, ColDocID},
		[]engine.AggSpec{{Op: engine.CountAll, As: ColTF}}, engine.GroupCertain)
	return engine.NewMaterialize(agg)
}

// NumDocsPlan counts the collection size (the paper's
// "(SELECT count(*) FROM doc_len)").
func NumDocsPlan(docs engine.Node, p Params) engine.Node {
	return engine.NewMaterialize(engine.NewAggregate(DocLenPlan(docs, p), nil,
		[]engine.AggSpec{{Op: engine.CountAll, As: "n"}}, engine.GroupCertain))
}

// AvgDocLenPlan computes the average document length (the paper's
// "(SELECT avg(len) FROM doc_len)").
func AvgDocLenPlan(docs engine.Node, p Params) engine.Node {
	return engine.NewMaterialize(engine.NewAggregate(DocLenPlan(docs, p), nil,
		[]engine.AggSpec{{Op: engine.Avg, Col: ColLen, As: "avgdl"}}, engine.GroupCertain))
}

// crossOne joins a plan against a single-row plan by a constant key,
// the engine's way of referencing a scalar subquery.
func crossOne(big, single engine.Node) engine.Node {
	l := engine.NewExtend(big, "one", expr.Int(1))
	r := engine.NewExtend(single, "one_r", expr.Int(1))
	return engine.NewHashJoin(l, r, []string{"one"}, []string{"one_r"}, engine.JoinLeft)
}

// IDFPlan mirrors idf, BM25's Robertson-Sparck Jones inverse document
// frequency:
//
//	SELECT termID, log( (N - df + 0.5) / (df + 0.5) ) as idf
//
// where df is the number of documents containing the term.
func IDFPlan(docs engine.Node, p Params) engine.Node {
	df := engine.NewAggregate(TFPlan(docs, p), []string{ColTermID},
		[]engine.AggSpec{{Op: engine.CountAll, As: ColDF}}, engine.GroupCertain)
	joined := crossOne(df, NumDocsPlan(docs, p))
	ratio := expr.Arith{Op: expr.Div,
		L: expr.Arith{Op: expr.Add,
			L: expr.Arith{Op: expr.Sub, L: expr.Column("n"), R: expr.Column(ColDF)},
			R: expr.Float(0.5)},
		R: expr.Arith{Op: expr.Add, L: expr.Column(ColDF), R: expr.Float(0.5)},
	}
	arg := expr.Expr(ratio)
	if p.IDFPlusOne {
		arg = expr.Arith{Op: expr.Add, L: expr.Float(1), R: ratio}
	}
	idf := engine.NewProject(joined,
		engine.ProjCol{Name: ColTermID, E: expr.Column(ColTermID)},
		engine.ProjCol{Name: ColIDF, E: expr.NewCall("log", arg)},
	)
	return engine.NewMaterialize(idf)
}

// CollectionFreqPlan computes per-term collection frequencies and is the
// language-model analogue of df.
func CollectionFreqPlan(docs engine.Node, p Params) engine.Node {
	cf := engine.NewAggregate(TFPlan(docs, p), []string{ColTermID},
		[]engine.AggSpec{{Op: engine.Sum, Col: ColTF, As: "cf"}}, engine.GroupCertain)
	return engine.NewMaterialize(cf)
}

// CollectionSizePlan computes the total number of tokens in the
// collection (language-model normalizer).
func CollectionSizePlan(docs engine.Node, p Params) engine.Node {
	return engine.NewMaterialize(engine.NewAggregate(CollectionFreqPlan(docs, p), nil,
		[]engine.AggSpec{{Op: engine.Sum, Col: "cf", As: "csize"}}, engine.GroupCertain))
}

// WeightsPlan produces the query-independent (termID, docID, w) matrix of
// the configured model; scoring a query reduces to probing this
// materialized relation with the query's termIDs and summing w per
// document.
//
// For BM25 this folds the paper's tf_bm25 and idf views together:
//
//	w = idf(t) · tf / (tf + k1·(1 − b + b·len/avgdl))
//
// (The paper's final SQL sums tf_bm25.tf after joining idf; the idf
// factor is part of BM25's standard formulation, so we fold it into the
// weight.)
func WeightsPlan(docs engine.Node, p Params) (engine.Node, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	switch p.Model {
	case BM25:
		return bm25Weights(docs, p), nil
	case TFIDF:
		return tfidfWeights(docs, p), nil
	case LMJelinekMercer:
		return lmjmWeights(docs, p), nil
	case LMDirichlet:
		return lmDirichletWeights(docs, p), nil
	default:
		return nil, fmt.Errorf("ir: unknown model %v", p.Model)
	}
}

func bm25Weights(docs engine.Node, p Params) engine.Node {
	// tf ⋈ doc_len on docID, then bring in the avgdl scalar.
	tfLen := engine.NewHashJoin(TFPlan(docs, p), DocLenPlan(docs, p),
		[]string{ColDocID}, []string{ColDocID}, engine.JoinLeft)
	withAvg := crossOne(tfLen, AvgDocLenPlan(docs, p))
	// tfn = tf / (tf + k1*(1 - b + b*len/avgdl))
	tfn := expr.Arith{Op: expr.Div,
		L: expr.Column(ColTF),
		R: expr.Arith{Op: expr.Add,
			L: expr.Column(ColTF),
			R: expr.Arith{Op: expr.Mul,
				L: expr.Float(p.K1),
				R: expr.Arith{Op: expr.Add,
					L: expr.Float(1 - p.B),
					R: expr.Arith{Op: expr.Mul,
						L: expr.Float(p.B),
						R: expr.Arith{Op: expr.Div, L: expr.Column(ColLen), R: expr.Column("avgdl")},
					}}}},
	}
	tfBM25 := engine.NewProject(withAvg,
		engine.ProjCol{Name: ColTermID, E: expr.Column(ColTermID)},
		engine.ProjCol{Name: ColDocID, E: expr.Column(ColDocID)},
		engine.ProjCol{Name: "tfn", E: tfn},
	)
	withIDF := engine.NewHashJoin(tfBM25, IDFPlan(docs, p),
		[]string{ColTermID}, []string{ColTermID}, engine.JoinLeft)
	w := engine.NewProject(withIDF,
		engine.ProjCol{Name: ColTermID, E: expr.Column(ColTermID)},
		engine.ProjCol{Name: ColDocID, E: expr.Column(ColDocID)},
		engine.ProjCol{Name: ColWeight, E: expr.Arith{Op: expr.Mul, L: expr.Column("tfn"), R: expr.Column(ColIDF)}},
	)
	return engine.NewMaterialize(w)
}

// tfidfWeights: w = (1 + ln tf) · ln((N+1)/(df+0.5)). Log-scaled term
// frequency with a smoothed idf; no document-length normalization.
func tfidfWeights(docs engine.Node, p Params) engine.Node {
	df := engine.NewAggregate(TFPlan(docs, p), []string{ColTermID},
		[]engine.AggSpec{{Op: engine.CountAll, As: ColDF}}, engine.GroupCertain)
	withN := crossOne(df, NumDocsPlan(docs, p))
	idf2 := engine.NewProject(withN,
		engine.ProjCol{Name: ColTermID, E: expr.Column(ColTermID)},
		engine.ProjCol{Name: ColIDF, E: expr.NewCall("log",
			expr.Arith{Op: expr.Div,
				L: expr.Arith{Op: expr.Add, L: expr.Column("n"), R: expr.Float(1)},
				R: expr.Arith{Op: expr.Add, L: expr.Column(ColDF), R: expr.Float(0.5)},
			})},
	)
	joined := engine.NewHashJoin(TFPlan(docs, p), engine.NewMaterialize(idf2),
		[]string{ColTermID}, []string{ColTermID}, engine.JoinLeft)
	w := engine.NewProject(joined,
		engine.ProjCol{Name: ColTermID, E: expr.Column(ColTermID)},
		engine.ProjCol{Name: ColDocID, E: expr.Column(ColDocID)},
		engine.ProjCol{Name: ColWeight, E: expr.Arith{Op: expr.Mul,
			L: expr.Arith{Op: expr.Add, L: expr.Float(1), R: expr.NewCall("log", expr.Column(ColTF))},
			R: expr.Column(ColIDF)}},
	)
	return engine.NewMaterialize(w)
}

// lmjmWeights: Jelinek-Mercer smoothed language model in rank-equivalent
// sum-of-logs form, w = ln(1 + ((1-λ)·tf/len) / (λ·cf/C)).
func lmjmWeights(docs engine.Node, p Params) engine.Node {
	tfLen := engine.NewHashJoin(TFPlan(docs, p), DocLenPlan(docs, p),
		[]string{ColDocID}, []string{ColDocID}, engine.JoinLeft)
	withCF := engine.NewHashJoin(tfLen, CollectionFreqPlan(docs, p),
		[]string{ColTermID}, []string{ColTermID}, engine.JoinLeft)
	withC := crossOne(withCF, CollectionSizePlan(docs, p))
	lambda := p.LambdaJM
	num := expr.Arith{Op: expr.Mul, L: expr.Float(1 - lambda),
		R: expr.Arith{Op: expr.Div, L: expr.Column(ColTF), R: expr.Column(ColLen)}}
	den := expr.Arith{Op: expr.Mul, L: expr.Float(lambda),
		R: expr.Arith{Op: expr.Div, L: expr.Column("cf"), R: expr.Column("csize")}}
	w := engine.NewProject(withC,
		engine.ProjCol{Name: ColTermID, E: expr.Column(ColTermID)},
		engine.ProjCol{Name: ColDocID, E: expr.Column(ColDocID)},
		engine.ProjCol{Name: ColWeight, E: expr.NewCall("log",
			expr.Arith{Op: expr.Add, L: expr.Float(1), R: expr.Arith{Op: expr.Div, L: num, R: den}})},
	)
	return engine.NewMaterialize(w)
}

// lmDirichletWeights: Dirichlet-smoothed language model, per-matching-term
// part w = ln(1 + tf/(μ·cf/C)); the per-document additive term
// |q|·ln(μ/(μ+len)) is applied by the scorer.
func lmDirichletWeights(docs engine.Node, p Params) engine.Node {
	withCF := engine.NewHashJoin(TFPlan(docs, p), CollectionFreqPlan(docs, p),
		[]string{ColTermID}, []string{ColTermID}, engine.JoinLeft)
	withC := crossOne(withCF, CollectionSizePlan(docs, p))
	w := engine.NewProject(withC,
		engine.ProjCol{Name: ColTermID, E: expr.Column(ColTermID)},
		engine.ProjCol{Name: ColDocID, E: expr.Column(ColDocID)},
		engine.ProjCol{Name: ColWeight, E: expr.NewCall("log",
			expr.Arith{Op: expr.Add, L: expr.Float(1),
				R: expr.Arith{Op: expr.Div,
					L: expr.Column(ColTF),
					R: expr.Arith{Op: expr.Mul, L: expr.Float(p.MuDirichlet),
						R: expr.Arith{Op: expr.Div, L: expr.Column("cf"), R: expr.Column("csize")}}}})},
	)
	return engine.NewMaterialize(w)
}

// QueryRelation wraps a raw query string as the single-row "query
// document" of section 2.1.
func QueryRelation(query string) *relation.Relation {
	return relation.NewBuilder([]string{ColDocID, ColData}, []vector.Kind{vector.Int64, vector.String}).
		Add(0, query).Build()
}

// QTermsPlan mirrors qterms: tokenize and stem the query exactly like the
// documents, then map to termIDs through the term dictionary. Unknown
// terms drop out in the join, as in the paper's SQL.
func QTermsPlan(docs engine.Node, p Params, query string) engine.Node {
	qvals := engine.NewValues("q:"+p.spec()+":"+query, QueryRelation(query))
	tok := &engine.Tokenize{Child: qvals, IDCol: ColDocID, DataCol: ColData, Tok: p.Tokenizer}
	qterms := engine.NewProject(tok, engine.ProjCol{Name: ColTerm, E: termExpr(p)})
	// Probe the (small) query against the materialized dictionary.
	join := engine.NewHashJoin(qterms, TermDictPlan(docs, p),
		[]string{ColTerm}, []string{ColTerm}, engine.JoinLeft)
	return engine.NewProject(join, engine.ProjCol{Name: ColTermID, E: expr.Column(ColTermID)})
}
