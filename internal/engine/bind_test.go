package engine

import (
	"context"
	"strings"
	"testing"

	"irdb/internal/catalog"
	"irdb/internal/expr"
	"irdb/internal/relation"
	"irdb/internal/vector"
)

func bindTestCat() *catalog.Catalog {
	cat := catalog.New(0)
	cat.Put("t", relation.MustFromColumns([]relation.Column{
		{Name: "k", Vec: vector.FromStrings([]string{"a", "b", "a", "c"})},
		{Name: "v", Vec: vector.FromInt64s([]int64{1, 2, 3, 4})},
	}, nil))
	return cat
}

// TestBindSharesParamFreeSubtrees: binding substitutes only the
// param-dependent spine; a subtree without parameters is the same Node
// pointer in the bound plan, so its fingerprint — and cache entry — is
// shared across bindings.
func TestBindSharesParamFreeSubtrees(t *testing.T) {
	free := NewMaterialize(NewSelect(NewScan("t"),
		expr.Cmp{Op: expr.Eq, L: expr.Column("k"), R: expr.Str("a")}))
	plan := NewHashJoin(
		NewSelect(NewScan("t"),
			expr.Cmp{Op: expr.Gt, L: expr.Column("v"), R: expr.Param{Name: "min"}}),
		free,
		[]string{"k"}, []string{"k"}, JoinIndependent)

	if got := Params(plan); len(got) != 1 || got[0] != "min" {
		t.Fatalf("Params = %v", got)
	}
	bound, err := Bind(plan, func(name string) (expr.Lit, bool) {
		return expr.Int(2), name == "min"
	})
	if err != nil {
		t.Fatal(err)
	}
	bj, ok := bound.(*HashJoin)
	if !ok || bj == plan {
		t.Fatalf("bound plan not rebuilt: %T", bound)
	}
	if bj.R != Node(free) {
		t.Fatal("param-free subtree was copied by Bind")
	}
	if strings.Contains(bound.Fingerprint(), "?min") {
		t.Fatalf("bound fingerprint still names the param: %s", bound.Fingerprint())
	}
	if !strings.Contains(plan.Fingerprint(), "?min") {
		t.Fatalf("prepared fingerprint lost the param: %s", plan.Fingerprint())
	}

	// Bound plans execute; two bindings give different results.
	ctx := NewCtx(bindTestCat())
	r2, err := ctx.Exec(context.Background(), bound)
	if err != nil {
		t.Fatal(err)
	}
	b0, err := Bind(plan, func(string) (expr.Lit, bool) { return expr.Int(0), true })
	if err != nil {
		t.Fatal(err)
	}
	r0, err := ctx.Exec(context.Background(), b0)
	if err != nil {
		t.Fatal(err)
	}
	if r2.NumRows() >= r0.NumRows() {
		t.Fatalf("min=2 gave %d rows, min=0 gave %d", r2.NumRows(), r0.NumRows())
	}

	// An unbound execution fails with the unbound-parameter error.
	if _, err := ctx.Exec(context.Background(), plan); err == nil ||
		!strings.Contains(err.Error(), "unbound parameter ?min") {
		t.Fatalf("unbound exec err = %v", err)
	}

	// Missing binding errors out of Bind itself.
	if _, err := Bind(plan, func(string) (expr.Lit, bool) { return expr.Lit{}, false }); err == nil {
		t.Fatal("Bind without a binding must error")
	}
}

// TestBindNoParamsReturnsSamePlan: a parameter-free plan binds to itself.
func TestBindNoParamsReturnsSamePlan(t *testing.T) {
	plan := NewSort(NewScan("t"), SortSpec{Col: "k"})
	bound, err := Bind(plan, func(string) (expr.Lit, bool) { return expr.Lit{}, false })
	if err != nil {
		t.Fatal(err)
	}
	if bound != Node(plan) {
		t.Fatal("param-free plan was copied")
	}
}

// TestEncodeMemo: repeated plain-string probes against one dict-encoded
// build side reuse the memoized re-encoding instead of redoing
// EncodeLookup, and results are unchanged.
func TestEncodeMemo(t *testing.T) {
	ctx := NewCtx(nil)
	dict := vector.EncodeStrings(vector.FromStrings([]string{"a", "b", "c"}))
	probe := vector.FromStrings([]string{"b", "x", "a", "b"})

	out1 := alignProbeVecs(ctx, []vector.Vector{probe}, []vector.Vector{dict})
	out2 := alignProbeVecs(ctx, []vector.Vector{probe}, []vector.Vector{dict})
	e1, ok1 := out1[0].(*vector.DictStrings)
	e2, ok2 := out2[0].(*vector.DictStrings)
	if !ok1 || !ok2 {
		t.Fatalf("probe not re-encoded: %T %T", out1[0], out2[0])
	}
	if e1 != e2 {
		t.Fatal("second alignment re-ran EncodeLookup instead of hitting the memo")
	}
	// The memo result is the correct encoding: codes agree with a fresh
	// EncodeLookup, unknown strings map to -1.
	fresh := vector.EncodeLookup(dict.Dict(), probe)
	for i, c := range e1.Codes() {
		if c != fresh.Codes()[i] {
			t.Fatalf("memoized code %d = %d, fresh = %d", i, c, fresh.Codes()[i])
		}
	}
	if e1.Codes()[1] != -1 {
		t.Fatalf("unknown probe string encoded as %d, want -1", e1.Codes()[1])
	}
	// A different probe vector misses the memo.
	probe2 := vector.FromStrings([]string{"c"})
	out3 := alignProbeVecs(ctx, []vector.Vector{probe2}, []vector.Vector{dict})
	if out3[0].(*vector.DictStrings) == e1 {
		t.Fatal("distinct probe vector shared a memo entry")
	}
}
