// Package chargedalloc enforces the PR 9 memory-governance contract in
// the engine: data-sized allocations are charged against the query's
// byte budget *before* they happen, on the coordinating goroutine, so a
// query that would blow its budget aborts with ErrBudgetExceeded instead
// of allocating first and accounting later (or never). The runtime leak
// checks prove the reservations balance; this analyzer proves new
// operator code cannot introduce an unaccounted sizing site.
//
// The mechanical rule: inside irdb/internal/engine, a `make` of a slice
// or map with a non-constant length, or a call to the pre-sized
// constructors (vector.NewSized*, relation/Relation NewSizedLike), must
// appear lexically after a budget charge (ctx.charge, ctx.chargeRel, or
// memory.Charge) within the same top-level function — or the function
// must be *caller-covered*: every call site in the package either sits
// after a charge in its own function or is itself caller-covered. The
// second clause is a fixpoint over the package call graph and is what
// lets buildBuckets charge 48 bytes/row once and have newOpenTable's
// internal allocations ride under that umbrella without annotations.
//
// Plan-time files (bind.go, optimize.go, rewrite.go, memo.go, deps.go,
// explain.go) are exempt wholesale: their allocations are O(plan) —
// proportional to the query text, not the data — and the budget
// governs data, not parse trees. Remaining legitimate exceptions
// (O(parallelism) scratch, allocations sized by an earlier charge in a
// different function the call graph cannot see) carry
// //lint:allow chargedalloc <reason>.
package chargedalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"irdb/internal/lint/analysis"
)

// Analyzer flags uncharged data-sized allocations in engine code.
var Analyzer = &analysis.Analyzer{
	Name: "chargedalloc",
	Doc: `report engine allocations that bypass the memory budget

In irdb/internal/engine, make() with a non-constant length and the
pre-sized vector/relation constructors must be preceded by a budget
charge — in the same function, or in every caller (transitively, to a
fixpoint over the package call graph). Plan-time files are exempt;
anything else carries //lint:allow chargedalloc <reason>.`,
	Run: run,
}

// chargeMethods are the budget-charging entry points: the engine's own
// helpers by name on any receiver, and the memory package's functions.
var chargeMethods = map[string]bool{"charge": true, "chargeRel": true}
var chargePkgFuncs = map[string]bool{"Charge": true, "Grow": true, "WithReservation": true}

// planTimeFiles hold allocations proportional to the query plan, not the
// data; the memory budget does not govern them.
var planTimeFiles = map[string]bool{
	"bind.go": true, "optimize.go": true, "rewrite.go": true,
	"memo.go": true, "deps.go": true, "explain.go": true,
}

// funcInfo is the per-function summary the fixpoint runs over.
type funcInfo struct {
	decl        *ast.FuncDecl
	firstCharge token.Pos // end-of-func sentinel when the function never charges
	allocs      []allocSite
	planTime    bool
}

type allocSite struct {
	pos  token.Pos
	what string
}

// callSite records one in-package call: which function it occurs in and
// where, so coverage can ask "was the caller charged by this point?".
type callSite struct {
	caller *types.Func
	pos    token.Pos
}

func run(pass *analysis.Pass) error {
	path := pass.PkgPath()
	if !analysis.FixtureScoped(path, "chargedalloc") && path != "irdb/internal/engine" {
		return nil
	}
	infos := map[*types.Func]*funcInfo{}
	callers := map[*types.Func][]callSite{}
	for _, file := range pass.Files {
		planTime := planTimeFiles[filepath.Base(pass.Fset.Position(file.Pos()).Filename)]
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			// The charge helpers themselves allocate nothing data-sized;
			// skipping them keeps the rule from demanding self-charges.
			if chargeMethods[fd.Name.Name] {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			infos[obj] = summarize(pass, fd, obj, planTime, callers)
		}
	}
	// Caller coverage, to fixpoint: a function is covered when it has at
	// least one in-package call site and every such site is either past a
	// charge in its caller, in plan-time code, or in a covered caller.
	// Cycles and exported entry points never converge to covered, which
	// is the conservative answer.
	covered := map[*types.Func]bool{}
	for changed := true; changed; {
		changed = false
		for obj := range infos {
			if covered[obj] {
				continue
			}
			if callerCovered(obj, infos, callers, covered) {
				covered[obj] = true
				changed = true
			}
		}
	}
	for obj, info := range infos {
		if info.planTime || covered[obj] {
			continue
		}
		for _, a := range info.allocs {
			if a.pos > info.firstCharge {
				continue
			}
			pass.Reportf(a.pos, "%s is not covered by a budget charge (none precede it here, and not every call site of %s is charged); charge the footprint first (ctx.charge/ctx.chargeRel) or annotate why it is exempt", a.what, obj.Name())
		}
	}
	return nil
}

// summarize does the single lexical sweep over one function body,
// recording its first charge, its alloc sites, and the in-package calls
// it makes (keyed by callee, attributed to this function).
func summarize(pass *analysis.Pass, fd *ast.FuncDecl, obj *types.Func, planTime bool, callers map[*types.Func][]callSite) *funcInfo {
	info := &funcInfo{decl: fd, firstCharge: fd.End() + 1, planTime: planTime}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isCharge(pass, call):
			if call.Pos() < info.firstCharge {
				info.firstCharge = call.Pos()
			}
		case isUnchargedMake(pass, call):
			info.allocs = append(info.allocs, allocSite{call.Pos(), "make with non-constant length"})
		case isSizedCtor(pass, call):
			info.allocs = append(info.allocs, allocSite{call.Pos(), "pre-sized constructor"})
		}
		if callee := calleeFunc(pass, call); callee != nil {
			callers[callee] = append(callers[callee], callSite{obj, call.Pos()})
		}
		return true
	})
	return info
}

// calleeFunc resolves a call to a same-package function or method
// declared at the top level, or nil.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() != pass.Pkg {
		return nil
	}
	return fn
}

// callerCovered evaluates the coverage condition for one function given
// the current fixpoint state.
func callerCovered(obj *types.Func, infos map[*types.Func]*funcInfo, callers map[*types.Func][]callSite, covered map[*types.Func]bool) bool {
	sites := callers[obj]
	if len(sites) == 0 {
		return false
	}
	for _, s := range sites {
		ci, ok := infos[s.caller]
		if !ok {
			return false // caller we did not summarize (e.g. skipped): unknown, assume uncharged
		}
		if ci.planTime || s.pos > ci.firstCharge || covered[s.caller] {
			continue
		}
		return false
	}
	return true
}

// isCharge reports whether call is one of the budget-charging helpers.
func isCharge(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if chargeMethods[sel.Sel.Name] {
		return true
	}
	if !chargePkgFuncs[sel.Sel.Name] {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pkgBase(pn.Imported().Path()) == "memory"
}

// isUnchargedMake reports whether call is make() of a slice or map whose
// allocation size — the capacity when given, else the length — is not a
// compile-time constant. make([]T, 0, n) allocates n slots just as
// make([]T, n) does, so both forms are under the rule.
func isUnchargedMake(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
		return false
	}
	if len(call.Args) < 2 {
		return false
	}
	switch pass.TypesInfo.TypeOf(call.Args[0]).Underlying().(type) {
	case *types.Slice, *types.Map:
	default:
		return false // channel capacities are O(1) headers, not data
	}
	size := call.Args[len(call.Args)-1]
	tv, ok := pass.TypesInfo.Types[size]
	return !ok || tv.Value == nil
}

// isSizedCtor reports whether call is one of the pre-sized constructors
// that allocate a full column or relation footprint up front.
func isSizedCtor(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	if name == "NewSizedLike" {
		return true // relation.NewSizedLike or (*Relation).NewSizedLike
	}
	if !strings.HasPrefix(name, "NewSized") {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pkgBase(pn.Imported().Path()) == "vector"
}

func pkgBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
