package mapiterorder_test

import (
	"testing"

	"irdb/internal/lint/analysistest"
	"irdb/internal/lint/mapiterorder"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, mapiterorder.Analyzer, "mapiterorder")
}
