// Package load turns package patterns into type-checked packages for the
// lint suite, and runs analyzers over them with `//lint:allow`
// suppression applied.
//
// Loading is built on two stdlib facilities so the suite needs no
// external modules: `go list -export -deps -json` enumerates the target
// packages and the compiler export data of every dependency (building it
// into the cache as needed — entirely offline), and
// importer.ForCompiler(fset, "gc", lookup) reads that export data when
// go/types resolves an import. This is the same shape as
// x/tools/go/packages' export-data mode, minus everything irdb-lint does
// not need.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"

	"irdb/internal/lint/analysis"
)

// A Package is one type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	ImportMap  map[string]string
	DepOnly    bool
	Standard   bool
}

// Load lists patterns with the go tool and type-checks every non-dep
// package from source, resolving imports through compiler export data.
// extraTags is passed to the go tool as -tags (empty for the default
// build).
func Load(patterns []string, extraTags string) ([]*Package, error) {
	args := []string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,ImportMap,DepOnly,Standard",
	}
	if extraTags != "" {
		args = append(args, "-tags", extraTags)
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := map[string]string{}
	var targets []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			pkg := p
			targets = append(targets, &pkg)
		}
	}

	fset := token.NewFileSet()
	base := NewExportImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		pkg, err := Check(fset, t.ImportPath, files, &unitImporter{imports: t.ImportMap, base: base})
		if err != nil {
			return nil, fmt.Errorf("%s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// NewExportImporter returns a types.Importer that resolves packages from
// gc export data located by resolve (import path → export file). The
// importer caches loaded packages, so it is shared across every unit a
// driver checks.
func NewExportImporter(fset *token.FileSet, resolve func(path string) (string, bool)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := resolve(path)
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// unitImporter applies one compilation unit's source-import → canonical
// path map before delegating to the shared export importer.
type unitImporter struct {
	imports map[string]string
	base    types.Importer
}

func (u *unitImporter) Import(path string) (*types.Package, error) {
	if c, ok := u.imports[path]; ok {
		path = c
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return u.base.Import(path)
}

// Check parses and type-checks one package from its source files.
// Comments are kept (the `//lint:allow` directives live there), and soft
// type errors are tolerated only if imp is nil.
func Check(fset *token.FileSet, pkgPath string, filenames []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{PkgPath: pkgPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// A Finding is one unsuppressed diagnostic from one analyzer.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Analyzer)
}

// Run applies every analyzer to every package, drops findings excused by
// `//lint:allow` directives, and returns the rest sorted by position.
func Run(pkgs []*Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		allow := analysis.BuildAllowIndex(pkg.Fset, pkg.Files)
		for _, az := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  az,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			name := az.Name
			pass.Report = func(d analysis.Diagnostic) {
				if allow.Allows(pkg.Fset, name, d.Pos) {
					return
				}
				findings = append(findings, Finding{
					Analyzer: name,
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if err := az.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", az.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}
