//go:build faultinject

package server

import (
	"errors"
	"net/http"
	"net/url"
	"testing"

	"irdb/internal/faultpoint"
	"irdb/internal/workload"
)

var errInjected = errors.New("injected search error")

// TestInjectedHandlerPanicRecovered: a panic injected into the /search
// handler is contained by the recovery middleware — the request answers
// 500, the next request answers 200, and the incident is on the /stats
// faults ledger. The server process never notices.
func TestInjectedHandlerPanicRecovered(t *testing.T) {
	_, ts := newTestServer(t)
	v := workload.NewVocabulary(500, 7)
	searchURL := ts.URL + "/search?strategy=auction-lots&k=5&q=" + url.QueryEscape(v.Word(10))

	faultpoint.Arm(faultpoint.SiteServerSearch, faultpoint.Spec{Panic: "injected handler crash", Count: 1})
	t.Cleanup(faultpoint.Reset)

	resp, err := http.Get(searchURL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status with armed panic = %d, want 500", resp.StatusCode)
	}
	if faultpoint.Hits(faultpoint.SiteServerSearch) == 0 {
		t.Fatal("handler never reached the fault site")
	}

	// Count=1: the site fired out; the same process serves the retry.
	if code := getJSON(t, searchURL, nil); code != http.StatusOK {
		t.Fatalf("status after recovered panic = %d, want 200", code)
	}

	var stats struct {
		Faults struct {
			Recovered     int64 `json:"recovered_panics"`
			HandlerPanics int64 `json:"handler_panics"`
		} `json:"faults"`
	}
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("/stats status = %d", code)
	}
	if stats.Faults.HandlerPanics != 1 || stats.Faults.Recovered < 1 {
		t.Errorf("faults ledger = %+v, want handler_panics=1", stats.Faults)
	}
}

// TestInjectedHandlerError: an injected error (no panic) surfaces as a
// clean 500 without touching the panic counters.
func TestInjectedHandlerError(t *testing.T) {
	srv, ts := newTestServer(t)
	faultpoint.Arm(faultpoint.SiteServerSearch, faultpoint.Spec{Err: errInjected, Count: 1})
	t.Cleanup(faultpoint.Reset)
	if code := getJSON(t, ts.URL+"/search?strategy=auction-lots&q=x", nil); code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", code)
	}
	if got := srv.handlerPanics.Load(); got != 0 {
		t.Errorf("handlerPanics = %d, want 0 for an error-path fault", got)
	}
}
