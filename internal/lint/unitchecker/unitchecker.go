// Package unitchecker implements the `go vet -vettool` protocol for the
// lint suite, mirroring x/tools/go/analysis/unitchecker on the stdlib
// only. cmd/go drives a vet tool one compilation unit at a time: it
// writes a JSON config describing the unit (source files, the import map,
// and the compiler export data of every dependency) and invokes the tool
// with the config path as its last argument. The tool type-checks the
// unit, runs its analyzers, prints diagnostics, and writes the (here:
// empty) facts file cmd/go expects at cfg.VetxOutput.
package unitchecker

import (
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"os"
	"path/filepath"

	"irdb/internal/lint/analysis"
	"irdb/internal/lint/load"
)

// Config is the JSON schema cmd/go writes for each vet unit. Field names
// must match cmd/go's (they are the protocol); fields the suite does not
// consume are listed for completeness and ignored.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Run checks the unit described by cfgPath with the given analyzers and
// returns the process exit code: 0 for a clean unit, 3 when diagnostics
// were reported (any non-zero exit makes `go vet` fail the package), and
// 1 for a protocol or internal error. Diagnostics go to stderr in the
// standard file:line:col form; with jsonOut they go to stdout in the
// x/tools JSON shape instead (and the exit code is 0, as upstream).
func Run(cfgPath string, analyzers []*analysis.Analyzer, jsonOut bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "irdb-lint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// cmd/go expects the facts file to exist after a successful run, even
	// though this suite records no cross-package facts. Write it first so
	// every early-exit path below still satisfies the protocol.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}

	fset := token.NewFileSet()
	base := load.NewExportImporter(fset, func(path string) (string, bool) {
		f, ok := cfg.PackageFile[path]
		return f, ok
	})
	imp := &mappedImporter{imports: cfg.ImportMap, base: base}
	files := make([]string, 0, len(cfg.GoFiles))
	for _, f := range cfg.GoFiles {
		if !filepath.IsAbs(f) {
			f = filepath.Join(cfg.Dir, f)
		}
		files = append(files, f)
	}
	pkg, err := load.Check(fset, cfg.ImportPath, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "irdb-lint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	if cfg.VetxOnly {
		return 0
	}

	findings, err := load.Run([]*load.Package{pkg}, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "irdb-lint: %v\n", err)
		return 1
	}
	if jsonOut {
		return printJSON(cfg.ImportPath, findings)
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", f.Pos, f.Message, f.Analyzer)
	}
	if len(findings) > 0 {
		return 3
	}
	return 0
}

// printJSON emits diagnostics in the same nested shape as x/tools'
// unitchecker (`go vet -json` consumers parse this).
func printJSON(importPath string, findings []load.Finding) int {
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := map[string][]jsonDiag{}
	for _, f := range findings {
		byAnalyzer[f.Analyzer] = append(byAnalyzer[f.Analyzer], jsonDiag{
			Posn:    f.Pos.String(),
			Message: f.Message,
		})
	}
	out := map[string]map[string][]jsonDiag{importPath: byAnalyzer}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "\t")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

// mappedImporter resolves a unit's source import paths through the vet
// config's ImportMap before reading export data. Missing entries fall
// back to the path itself: cmd/go writes identity entries for every
// import, but being lenient costs nothing.
type mappedImporter struct {
	imports map[string]string
	base    types.Importer
}

func (m *mappedImporter) Import(path string) (*types.Package, error) {
	if c, ok := m.imports[path]; ok {
		path = c
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return m.base.Import(path)
}
