package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"irdb/internal/catalog"
	"irdb/internal/engine"
)

// TestRecoveryMiddleware: a panic escaping a handler is answered as a
// 500, counted, and the process keeps serving.
func TestRecoveryMiddleware(t *testing.T) {
	srv := New(engine.NewCtx(catalog.New(0)), nil)
	h := srv.withRecovery(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("handler boom")
	}))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/search", nil))
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rr.Code)
	}
	if got := srv.handlerPanics.Load(); got != 1 {
		t.Errorf("handlerPanics = %d, want 1", got)
	}
	// Healthy requests keep flowing through the same middleware.
	rr = httptest.NewRecorder()
	ok := srv.withRecovery(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	ok.ServeHTTP(rr, httptest.NewRequest("GET", "/search", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status after recovered panic = %d, want 200", rr.Code)
	}
}

// TestAdmissionWaitSheds: with the only slot occupied and a small
// admission wait, a queued request is shed fast with 503 + Retry-After
// instead of queueing without bound, and the shed is counted in /stats.
func TestAdmissionWaitSheds(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.SetMaxInFlight(1)
	srv.SetAdmissionWait(5 * time.Millisecond)
	if got := srv.acquire(context.Background()); got != admitted {
		t.Fatalf("initial acquire = %v", got)
	}
	defer srv.release()

	resp, err := http.Get(ts.URL + "/search?strategy=auction-lots&q=x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("shed response has no Retry-After header")
	}

	var stats struct {
		Faults struct {
			Shed int64 `json:"shed_requests"`
		} `json:"faults"`
		Admission struct {
			QueuedTotal int64 `json:"queued_total"`
		} `json:"admission"`
	}
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("/stats status = %d", code)
	}
	if stats.Faults.Shed < 1 {
		t.Errorf("shed_requests = %d, want >= 1", stats.Faults.Shed)
	}
	if stats.Admission.QueuedTotal < 1 {
		t.Errorf("queued_total = %d, want >= 1", stats.Admission.QueuedTotal)
	}
}

// TestShutdownDrains: Shutdown waits for in-flight requests (or its
// context), then new requests are shed with 503 while /stats keeps
// answering.
func TestShutdownDrains(t *testing.T) {
	srv, ts := newTestServer(t)
	if got := srv.acquire(context.Background()); got != admitted {
		t.Fatalf("acquire = %v", got)
	}

	// With a request in flight, a bounded Shutdown times out.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown with busy server = %v, want DeadlineExceeded", err)
	}

	// Once the request finishes the drain completes.
	srv.release()
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown after release = %v", err)
	}

	// New work is refused as shutting down; observability stays up.
	resp, err := http.Get(ts.URL + "/search?strategy=auction-lots&q=x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("search during drain: status = %d, want 503", resp.StatusCode)
	}
	var stats struct {
		Admission struct {
			Draining bool `json:"draining"`
		} `json:"admission"`
	}
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("/stats during drain: status = %d", code)
	}
	if !stats.Admission.Draining {
		t.Error("/stats does not report draining")
	}
}
