package irdb

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"sort"
	"strings"
	"testing"
)

// TestAPISurface pins the package's exported API to the committed
// api.txt golden: any addition, removal or signature change to the
// public facade must be deliberate — regenerate with
//
//	IRDB_UPDATE_API=1 go test -run TestAPISurface .
//
// and commit the diff. CI runs this test, so an accidental API break
// fails the build.
func TestAPISurface(t *testing.T) {
	got := apiSurface(t)
	if os.Getenv("IRDB_UPDATE_API") != "" {
		if err := os.WriteFile("api.txt", []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("api.txt regenerated")
		return
	}
	want, err := os.ReadFile("api.txt")
	if err != nil {
		t.Fatalf("missing api.txt golden (regenerate with IRDB_UPDATE_API=1): %v", err)
	}
	if got != string(want) {
		t.Fatalf("public API surface changed; if intentional, regenerate api.txt with IRDB_UPDATE_API=1.\n--- api.txt\n+++ current\n%s", diffLines(string(want), got))
	}
}

// apiSurface renders every exported declaration of the root package, one
// line per declaration, sorted.
func apiSurface(t *testing.T) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["irdb"]
	if !ok {
		t.Fatalf("no irdb package found (have %v)", pkgs)
	}
	var lines []string
	render := func(n ast.Node) string {
		var b strings.Builder
		if err := printer.Fprint(&b, fset, n); err != nil {
			t.Fatal(err)
		}
		// Collapse to one line so the golden diffs cleanly.
		return strings.Join(strings.Fields(b.String()), " ")
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				if d.Recv != nil && !exportedRecv(d.Recv) {
					continue
				}
				cp := *d
				cp.Body = nil
				cp.Doc = nil
				lines = append(lines, render(&cp))
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() {
							cp := *s
							cp.Doc, cp.Comment = nil, nil
							stripFieldDocs(&cp)
							lines = append(lines, "type "+render(&cp))
						}
					case *ast.ValueSpec:
						for _, name := range s.Names {
							if name.IsExported() {
								lines = append(lines, fmt.Sprintf("%s %s", declKind(d.Tok), name.Name))
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

func declKind(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}

func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	tname := recv.List[0].Type
	for {
		switch x := tname.(type) {
		case *ast.StarExpr:
			tname = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}

// stripFieldDocs removes doc comments and unexported fields inside
// struct/interface bodies so the surface line holds only the public
// names and types.
func stripFieldDocs(s *ast.TypeSpec) {
	switch t := s.Type.(type) {
	case *ast.StructType:
		kept := t.Fields.List[:0:0]
		for _, f := range t.Fields.List {
			f.Doc, f.Comment = nil, nil
			exported := len(f.Names) == 0 // embedded: keep
			for _, n := range f.Names {
				exported = exported || n.IsExported()
			}
			if exported {
				kept = append(kept, f)
			}
		}
		t.Fields.List = kept
	case *ast.InterfaceType:
		for _, f := range t.Methods.List {
			f.Doc, f.Comment = nil, nil
		}
	}
}

func diffLines(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	inWant := map[string]bool{}
	for _, l := range wl {
		inWant[l] = true
	}
	inGot := map[string]bool{}
	for _, l := range gl {
		inGot[l] = true
	}
	var b strings.Builder
	for _, l := range wl {
		if !inGot[l] {
			fmt.Fprintf(&b, "-%s\n", l)
		}
	}
	for _, l := range gl {
		if !inWant[l] {
			fmt.Fprintf(&b, "+%s\n", l)
		}
	}
	return b.String()
}
