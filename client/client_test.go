package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock collects requested sleeps without actually sleeping.
type fakeClock struct {
	slept []time.Duration
}

func (f *fakeClock) sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	f.slept = append(f.slept, d)
	return nil
}

// newTestClient builds a client with deterministic backoff: no jitter,
// no real sleeping.
func newTestClient(baseURL string, clock *fakeClock, cfg Config) *Client {
	cfg.sleep = clock.sleep
	cfg.jitter = func(d time.Duration) time.Duration { return d }
	return New(baseURL, cfg)
}

// shedThenServe answers 503 + Retry-After for the first n requests,
// then delegates to next.
func shedThenServe(n int64, retryAfter string, next http.Handler) (http.Handler, *atomic.Int64) {
	var served atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if served.Add(1) <= n {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"server overloaded; retry later"}`)
			return
		}
		next.ServeHTTP(w, r)
	}), &served
}

func okSearchHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"strategy":"s","query":"q","k":1,"results":[{"subject":"lot1","score":0.9}],"latency_ms":1}`)
	})
}

// TestRetriesShedWithBackoff: two sheds, then success — the client
// retries with doubling backoff and returns the eventual result.
func TestRetriesShedWithBackoff(t *testing.T) {
	h, served := shedThenServe(2, "", okSearchHandler())
	ts := httptest.NewServer(h)
	defer ts.Close()

	clock := &fakeClock{}
	c := newTestClient(ts.URL, clock, Config{BaseBackoff: 10 * time.Millisecond})
	resp, err := c.Search(context.Background(), "s", "q", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Subject != "lot1" {
		t.Fatalf("results = %+v", resp.Results)
	}
	if served.Load() != 3 {
		t.Fatalf("server saw %d requests, want 3", served.Load())
	}
	if len(clock.slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(clock.slept))
	}
	if clock.slept[0] != 10*time.Millisecond || clock.slept[1] != 20*time.Millisecond {
		t.Fatalf("backoffs = %v, want doubling from 10ms", clock.slept)
	}
	if c.Retries() != 2 {
		t.Fatalf("Retries() = %d", c.Retries())
	}
}

// TestHonorsRetryAfter: the server's Retry-After stretches the delay
// beyond the computed backoff.
func TestHonorsRetryAfter(t *testing.T) {
	h, _ := shedThenServe(1, "2", okSearchHandler())
	ts := httptest.NewServer(h)
	defer ts.Close()

	clock := &fakeClock{}
	c := newTestClient(ts.URL, clock, Config{BaseBackoff: 10 * time.Millisecond})
	if _, err := c.Search(context.Background(), "s", "q", 1); err != nil {
		t.Fatal(err)
	}
	if len(clock.slept) != 1 || clock.slept[0] != 2*time.Second {
		t.Fatalf("slept %v, want [2s] from Retry-After", clock.slept)
	}
}

// TestExhaustsRetries: a server that never stops shedding yields
// ErrUnavailable after MaxAttempts tries.
func TestExhaustsRetries(t *testing.T) {
	h, served := shedThenServe(1<<30, "", okSearchHandler())
	ts := httptest.NewServer(h)
	defer ts.Close()

	clock := &fakeClock{}
	c := newTestClient(ts.URL, clock, Config{MaxAttempts: 3, BaseBackoff: time.Millisecond})
	_, err := c.Search(context.Background(), "s", "q", 1)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	if served.Load() != 3 {
		t.Fatalf("server saw %d requests, want 3", served.Load())
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("err %v does not carry the final 503", err)
	}
}

// TestBudget507IsTerminal: a 507 is never retried and maps to
// ErrBudgetExceeded.
func TestBudget507IsTerminal(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusInsufficientStorage)
		fmt.Fprint(w, `{"error":"memory budget exceeded"}`)
	}))
	defer ts.Close()

	clock := &fakeClock{}
	c := newTestClient(ts.URL, clock, Config{})
	_, err := c.Search(context.Background(), "s", "q", 1)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("server saw %d requests, want exactly 1 (no retries)", hits.Load())
	}
	if len(clock.slept) != 0 {
		t.Fatalf("client slept %v on a terminal error", clock.slept)
	}
}

// TestBadRequestIsTerminal: 4xx responses surface immediately as
// APIError.
func TestBadRequestIsTerminal(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":"k must be an integer in [1,1000]"}`)
	}))
	defer ts.Close()

	c := newTestClient(ts.URL, &fakeClock{}, Config{})
	_, err := c.Search(context.Background(), "s", "q", 0)
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want *APIError 400", err)
	}
	if ae.Message == "" {
		t.Fatal("APIError lost the server's message")
	}
	if hits.Load() != 1 {
		t.Fatalf("server saw %d requests, want 1", hits.Load())
	}
}

// TestDeadlineBoundsBackoff: when the context deadline cannot fit the
// next backoff, the client gives up instead of sleeping into certain
// failure.
func TestDeadlineBoundsBackoff(t *testing.T) {
	h, served := shedThenServe(1<<30, "30", okSearchHandler())
	ts := httptest.NewServer(h)
	defer ts.Close()

	clock := &fakeClock{}
	c := newTestClient(ts.URL, clock, Config{BaseBackoff: 10 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Search(ctx, "s", "q", 1)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	// Retry-After said 30s; the deadline allows 100ms. The client must
	// not have slept at all (fake clock aside, wall time stays tiny).
	if len(clock.slept) != 0 {
		t.Fatalf("slept %v past the deadline budget", clock.slept)
	}
	if served.Load() != 1 {
		t.Fatalf("server saw %d requests, want 1", served.Load())
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("call blocked far past its deadline")
	}
}

// TestTransportErrorsRetry: connection refused is retryable; with a
// dead address every attempt fails and ErrUnavailable surfaces.
func TestTransportErrorsRetry(t *testing.T) {
	// A listener that is immediately closed: connections are refused.
	ts := httptest.NewServer(okSearchHandler())
	dead := ts.URL
	ts.Close()

	clock := &fakeClock{}
	c := newTestClient(dead, clock, Config{MaxAttempts: 3, BaseBackoff: time.Millisecond})
	_, err := c.Search(context.Background(), "s", "q", 1)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	if len(clock.slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(clock.slept))
	}
}
