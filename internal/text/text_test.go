package text

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenizerBasic(t *testing.T) {
	tok := Default()
	got := tok.Tokens("A Book about History!")
	want := []string{"a", "book", "about", "history"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokens = %v, want %v", got, want)
	}
}

func TestTokenizerPositions(t *testing.T) {
	tok := Default()
	got := tok.TokensPos("book  about,history")
	want := []Token{{"book", 0}, {"about", 1}, {"history", 2}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TokensPos = %v, want %v", got, want)
	}
}

func TestTokenizerNoLower(t *testing.T) {
	tok := Tokenizer{}
	got := tok.Tokens("Wooden Train")
	want := []string{"Wooden", "Train"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokens = %v, want %v", got, want)
	}
}

func TestTokenizerStopwords(t *testing.T) {
	tok := Tokenizer{Lower: true, DropStopwords: true}
	got := tok.Tokens("a history of the toys")
	want := []string{"history", "toys"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokens = %v, want %v", got, want)
	}
	// positions must count accepted tokens only
	pos := tok.TokensPos("a history of the toys")
	if pos[0].Pos != 0 || pos[1].Pos != 1 {
		t.Errorf("positions after filtering = %v", pos)
	}
}

func TestTokenizerCustomStopwords(t *testing.T) {
	tok := Tokenizer{Lower: true, DropStopwords: true, Stopwords: map[string]bool{"toy": true}}
	got := tok.Tokens("the toy train")
	want := []string{"the", "train"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokens = %v, want %v", got, want)
	}
}

func TestTokenizerMinLen(t *testing.T) {
	tok := Tokenizer{Lower: true, MinLen: 3}
	got := tok.Tokens("go to the market")
	want := []string{"the", "market"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokens = %v, want %v", got, want)
	}
}

func TestTokenizerUnicode(t *testing.T) {
	tok := Default()
	got := tok.Tokens("café menü 1930s")
	want := []string{"café", "menü", "1930s"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokens = %v, want %v", got, want)
	}
}

func TestTokenizerEmptyAndPunctOnly(t *testing.T) {
	tok := Default()
	if got := tok.Tokens(""); len(got) != 0 {
		t.Errorf("Tokens(\"\") = %v", got)
	}
	if got := tok.Tokens("... --- !!!"); len(got) != 0 {
		t.Errorf("Tokens(punct) = %v", got)
	}
}

func TestSpecDistinguishesConfigs(t *testing.T) {
	a := Tokenizer{Lower: true}.Spec()
	b := Tokenizer{Lower: true, DropStopwords: true}.Spec()
	c := Tokenizer{Lower: true, MinLen: 2}.Spec()
	if a == b || a == c || b == c {
		t.Errorf("Specs collide: %q %q %q", a, b, c)
	}
}

// Property: token count equals position of last token + 1; positions are
// strictly increasing from 0.
func TestTokenPositionsProperty(t *testing.T) {
	tok := Default()
	f := func(s string) bool {
		toks := tok.TokensPos(s)
		for i, tk := range toks {
			if tk.Pos != i || tk.Term == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSynonymExpand(t *testing.T) {
	d := SynonymDict{"car": {"auto", "automobile"}, "toy": {"plaything"}}
	got := d.Expand([]string{"toy", "car"})
	want := []string{"toy", "car", "plaything", "auto", "automobile"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Expand = %v, want %v", got, want)
	}
	// dedup: synonym equals an original term
	d2 := SynonymDict{"car": {"car", "auto"}}
	got2 := d2.Expand([]string{"car"})
	if !reflect.DeepEqual(got2, []string{"car", "auto"}) {
		t.Errorf("Expand dedup = %v", got2)
	}
}

func TestSynonymTermsSorted(t *testing.T) {
	d := SynonymDict{"zebra": nil, "apple": nil}
	got := d.Terms()
	if !reflect.DeepEqual(got, []string{"apple", "zebra"}) {
		t.Errorf("Terms = %v", got)
	}
}

func TestCompounds(t *testing.T) {
	got := Compounds([]string{"wooden", "train", "set"})
	want := []string{"wooden_train", "train_set"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Compounds = %v, want %v", got, want)
	}
	if Compounds([]string{"solo"}) != nil {
		t.Error("Compounds of single term should be nil")
	}
}

func TestCompoundVariants(t *testing.T) {
	in := []Token{{"wooden", 0}, {"train", 1}}
	got := CompoundVariants(in)
	want := []Token{{"wooden", 0}, {"wooden_train", 0}, {"train", 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("CompoundVariants = %v, want %v", got, want)
	}
}

func TestNormalizeQuery(t *testing.T) {
	if got := NormalizeQuery("  Wooden   TRAIN "); got != "wooden train" {
		t.Errorf("NormalizeQuery = %q", got)
	}
}
