package ingest

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"irdb/internal/catalog"
	"irdb/internal/triple"
	"irdb/internal/wal"
)

func newDB() (*catalog.Catalog, *triple.Store) {
	cat := catalog.New(0)
	return cat, triple.NewStore(cat)
}

func openDurable(t *testing.T, dir string) (*Manager, *catalog.Catalog, *triple.Store) {
	t.Helper()
	cat, store := newDB()
	m := New(cat, store, "docs")
	if err := m.OpenDurable(dir, wal.Options{Policy: wal.SyncAlways}); err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	return m, cat, store
}

func sortTriples(ts []triple.Triple) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if a.Subject != b.Subject {
			return a.Subject < b.Subject
		}
		if a.Property != b.Property {
			return a.Property < b.Property
		}
		return a.Obj.Format() < b.Obj.Format()
	})
}

func wantTriples(t *testing.T, store *triple.Store, want []triple.Triple) {
	t.Helper()
	got, err := store.Dump()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i].P == 0 {
			want[i].P = 1.0
		}
	}
	sortTriples(got)
	sortTriples(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("store contents:\n got %v\nwant %v", got, want)
	}
}

// TestDurableAppendSurvivesReopen is the core recovery contract: every
// acknowledged batch — appends, deletes, docs — is present after
// abandoning the manager (no Close, as a crash would) and recovering the
// directory from scratch.
func TestDurableAppendSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	m, _, _ := openDurable(t, dir)
	base := []triple.Triple{
		{Subject: "a", Property: "type", Obj: triple.String("lot")},
		{Subject: "b", Property: "type", Obj: triple.String("lot")},
		{Subject: "a", Property: "price", Obj: triple.Int(10)},
	}
	if n, err := m.AppendTriples(base); err != nil || n != 3 {
		t.Fatalf("AppendTriples = %d, %v", n, err)
	}
	if n, err := m.DeleteTriples([]triple.Triple{{Subject: "b", Property: "type", Obj: triple.String("lot")}}); err != nil || n != 1 {
		t.Fatalf("DeleteTriples = %d, %v", n, err)
	}
	if n, err := m.AppendDocs([]Doc{{ID: "d1", Text: "wooden train", P: 0.5}}); err != nil || n != 1 {
		t.Fatalf("AppendDocs = %d, %v", n, err)
	}
	// No Close: the reopen must recover from the WAL alone.
	m2, cat2, store2 := openDurable(t, dir)
	defer m2.Close()
	wantTriples(t, store2, []triple.Triple{
		{Subject: "a", Property: "type", Obj: triple.String("lot")},
		{Subject: "a", Property: "price", Obj: triple.Int(10)},
	})
	docs, err := cat2.Table("docs")
	if err != nil {
		t.Fatal(err)
	}
	if docs.NumRows() != 1 {
		t.Fatalf("docs rows = %d, want 1", docs.NumRows())
	}
	if got := docs.Prob()[0]; got != 0.5 {
		t.Fatalf("doc probability = %v, want 0.5", got)
	}
	st := m2.Stats()
	if st.AppendedTriples != 3 || st.DeletedTriples != 1 || st.AppendedDocs != 1 {
		t.Fatalf("replayed counters = %+v", st)
	}
}

// TestCheckpointRotatesAndRecovers: after a checkpoint the WAL holds one
// fresh segment, recovery loads the snapshot and replays only the
// records past its watermark, and a second reopen sees post-checkpoint
// appends too.
func TestCheckpointRotatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	m, _, _ := openDurable(t, dir)
	if _, err := m.AppendTriples([]triple.Triple{{Subject: "a", Property: "p", Obj: triple.String("x")}}); err != nil {
		t.Fatal(err)
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if _, err := m.AppendTriples([]triple.Triple{{Subject: "b", Property: "p", Obj: triple.String("y")}}); err != nil {
		t.Fatal(err)
	}
	ws, ok := m.WALStats()
	if !ok || ws.Segments != 1 || ws.Rotations != 1 {
		t.Fatalf("wal stats after checkpoint = %+v", ws)
	}
	if _, err := os.Stat(filepath.Join(dir, SnapshotFile)); err != nil {
		t.Fatalf("snapshot missing: %v", err)
	}

	m2, _, store2 := openDurable(t, dir)
	defer m2.Close()
	wantTriples(t, store2, []triple.Triple{
		{Subject: "a", Property: "p", Obj: triple.String("x")},
		{Subject: "b", Property: "p", Obj: triple.String("y")},
	})
	// Only the post-checkpoint append replays; "a" came from the snapshot.
	if st := m2.Stats(); st.AppendedTriples != 1 {
		t.Fatalf("replayed appends = %d, want 1 (snapshot covers the rest)", st.AppendedTriples)
	}
}

// TestReplaceTriplesCheckpointsImmediately: a bulk replace bypasses the
// WAL, so on a durable manager it must checkpoint — a reopen recovers
// the replaced contents, and earlier WAL records do not replay over it.
func TestReplaceTriplesCheckpointsImmediately(t *testing.T) {
	dir := t.TempDir()
	m, _, _ := openDurable(t, dir)
	if _, err := m.AppendTriples([]triple.Triple{{Subject: "old", Property: "p", Obj: triple.String("x")}}); err != nil {
		t.Fatal(err)
	}
	if err := m.ReplaceTriples([]triple.Triple{{Subject: "new", Property: "p", Obj: triple.String("y")}}); err != nil {
		t.Fatal(err)
	}
	m2, _, store2 := openDurable(t, dir)
	defer m2.Close()
	wantTriples(t, store2, []triple.Triple{{Subject: "new", Property: "p", Obj: triple.String("y")}})
}

// TestMemoryOnlyManager: without a durability directory everything works
// in memory and Checkpoint reports ErrNotDurable.
func TestMemoryOnlyManager(t *testing.T) {
	cat, store := newDB()
	m := New(cat, store, "docs")
	if _, err := m.AppendTriples([]triple.Triple{{Subject: "a", Property: "p", Obj: triple.String("x")}}); err != nil {
		t.Fatal(err)
	}
	wantTriples(t, store, []triple.Triple{{Subject: "a", Property: "p", Obj: triple.String("x")}})
	if err := m.Checkpoint(); err != ErrNotDurable {
		t.Fatalf("Checkpoint = %v, want ErrNotDurable", err)
	}
	if _, ok := m.WALStats(); ok {
		t.Fatal("memory-only manager reports WAL stats")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTriplePayloadRoundTrip covers every object kind plus probability.
func TestTriplePayloadRoundTrip(t *testing.T) {
	in := []triple.Triple{
		{Subject: "s1", Property: "p1", Obj: triple.String("hello world"), P: 0.25},
		{Subject: "s2", Property: "p2", Obj: triple.Int(-42), P: 1.0},
		{Subject: "s3", Property: "p3", Obj: triple.Float(3.5), P: 0.75},
		{Subject: "", Property: "", Obj: triple.String(""), P: 0},
	}
	b, err := encodeTriples(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := decodeTriples(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip:\n in %v\nout %v", in, out)
	}
}

// TestTriplePayloadCorruptionDetected: truncations and garbage at every
// prefix length must error, never panic or return wrong triples.
func TestTriplePayloadCorruptionDetected(t *testing.T) {
	b, err := encodeTriples([]triple.Triple{
		{Subject: "subject", Property: "property", Obj: triple.String("object"), P: 0.5},
		{Subject: "s", Property: "p", Obj: triple.Int(7), P: 1.0},
	})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(b); cut++ {
		if _, err := decodeTriples(b[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", cut)
		}
	}
	if _, err := decodeTriples(append(append([]byte(nil), b...), 0xff)); err == nil {
		t.Fatal("trailing byte decoded without error")
	}
	bad := append([]byte(nil), b...)
	bad[len(bad)-10] = 0xee // clobber inside the last triple
	if _, err := decodeTriples(bad); err == nil {
		t.Log("clobbered payload decoded — acceptable only if values differ; checking")
	}
}

// TestDocPayloadRoundTrip mirrors the triple codec test for docs.
func TestDocPayloadRoundTrip(t *testing.T) {
	in := []Doc{{ID: "d1", Text: "wooden train set", P: 0.5}, {ID: "", Text: "", P: 0}}
	out, err := decodeDocs(encodeDocs(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip:\n in %v\nout %v", in, out)
	}
	b := encodeDocs(in)
	for cut := 0; cut < len(b); cut++ {
		if _, err := decodeDocs(b[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", cut)
		}
	}
}
