package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"irdb/internal/expr"
	"irdb/internal/relation"
	"irdb/internal/vector"
)

// panicHook lets tests inject a panic into the middle of predicate
// evaluation — which runs inside runRanges morsel workers — through a
// registered scalar function, without any build tags.
var panicHook atomic.Pointer[func()]

func init() {
	expr.RegisterFunc(expr.Func{Name: "test_panic_hook", Eval: func(args []vector.Vector, n int) (vector.Vector, error) {
		if h := panicHook.Load(); h != nil {
			(*h)()
		}
		out := make([]bool, n)
		for i := range out {
			out[i] = true
		}
		return vector.FromBools(out), nil
	}})
}

func setPanicHook(t *testing.T, f func()) {
	t.Helper()
	panicHook.Store(&f)
	t.Cleanup(func() { panicHook.Store(nil) })
}

// panicRel is large enough (> 2*minMorsel) that Select's predicate loop
// really splits into morsels at Parallelism > 1.
func panicRel() *relation.Relation {
	r := rand.New(rand.NewSource(11))
	return randRel(r, 3*minMorsel, 64)
}

// hookedSelect is a Select whose predicate calls the panic hook on every
// morsel.
func hookedSelect() Node {
	return NewSelect(NewScan("t"), expr.NewCall("test_panic_hook", expr.Column("b")))
}

// TestSelectPanicContained: a panic inside a morsel worker becomes a
// *PanicError query failure — the process survives, the pool drains, the
// failed result is never cached, and the very next query on the same
// context succeeds. Run under -race at parallelism 1, 2 and 8 to cover
// the inline, barely-parallel and oversubscribed dispatch paths.
func TestSelectPanicContained(t *testing.T) {
	for _, par := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("par=%d", par), func(t *testing.T) {
			ctx := ctxAt(par, map[string]*relation.Relation{"t": panicRel()})
			ctx.CacheAll = true
			setPanicHook(t, func() { panic("kaboom") })

			plan := hookedSelect()
			_, err := ctx.Exec(context.Background(), plan)
			pe, ok := AsPanicError(err)
			if !ok {
				t.Fatalf("err = %v, want *PanicError", err)
			}
			if pe.Op == "" || len(pe.Stack) == 0 {
				t.Errorf("PanicError missing context: op=%q stack=%d bytes", pe.Op, len(pe.Stack))
			}
			if got := ctx.RecoveredPanics(); got == 0 {
				t.Errorf("RecoveredPanics = %d, want > 0", got)
			}
			if _, cached := ctx.Cat.Cache().Get(plan.Fingerprint()); cached {
				t.Error("failed result was cached")
			}

			// The pool drained and the process survived: the same query runs
			// clean once the fault is gone.
			panicHook.Store(nil)
			rel, err := ctx.Exec(context.Background(), hookedSelect())
			if err != nil {
				t.Fatalf("query after contained panic: %v", err)
			}
			if rel.NumRows() != 3*minMorsel {
				t.Errorf("rows = %d, want %d", rel.NumRows(), 3*minMorsel)
			}
		})
	}
}

// TestPanicBeatsCancellation: when a worker panics while the query's
// context is being cancelled, the query deterministically reports the
// panic — a blown-up worker is a bug to surface, not a client disconnect
// to shrug off. The hook cancels the context itself, so the interleaving
// is exact at every parallelism. (The guarantee holds on the direct
// execute path; a caller that detaches from a shared single-flight cache
// computation reports its own cancellation, because the flight may be
// computing for someone else.)
func TestPanicBeatsCancellation(t *testing.T) {
	for _, par := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("par=%d", par), func(t *testing.T) {
			ctx := ctxAt(par, map[string]*relation.Relation{"t": panicRel()})
			c, cancel := context.WithCancel(context.Background())
			defer cancel()
			setPanicHook(t, func() {
				cancel()
				panic("kaboom during cancel")
			})

			plan := hookedSelect()
			_, err := ctx.Exec(c, plan)
			if _, ok := AsPanicError(err); !ok {
				t.Fatalf("err = %v, want *PanicError to win over cancellation", err)
			}
			if errors.Is(err, context.Canceled) {
				t.Errorf("PanicError wraps context.Canceled: %v", err)
			}
			if _, cached := ctx.Cat.Cache().Get(plan.Fingerprint()); cached {
				t.Error("failed result was cached")
			}
		})
	}
}

// boomNode is a plan leaf whose execution panics, for exercising the
// subtree-goroutine containment in execPair/execAll.
type boomNode struct{}

func (b *boomNode) Execute(context.Context, *Ctx) (*relation.Relation, error) {
	panic("child boom")
}
func (b *boomNode) Fingerprint() string { return "boom()" }
func (b *boomNode) Children() []Node    { return nil }
func (b *boomNode) Label() string       { return "Boom" }

// TestJoinChildPanicContained: a panicking join input — evaluated on an
// execPair worker goroutine at parallelism > 1, inline at 1 — fails the
// query with a PanicError naming the operator, and the context stays
// usable.
func TestJoinChildPanicContained(t *testing.T) {
	for _, par := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("par=%d", par), func(t *testing.T) {
			ctx := ctxAt(par, map[string]*relation.Relation{"t": panicRel()})
			plan := NewHashJoin(NewScan("t"), &boomNode{}, []string{"a"}, []string{"a"}, JoinIndependent)
			_, err := ctx.Exec(context.Background(), plan)
			pe, ok := AsPanicError(err)
			if !ok {
				t.Fatalf("err = %v, want *PanicError", err)
			}
			if pe.Op != "Boom" {
				t.Errorf("Op = %q, want the failing operator's label", pe.Op)
			}
			if _, err := ctx.Exec(context.Background(), NewScan("t")); err != nil {
				t.Fatalf("query after contained panic: %v", err)
			}
		})
	}
}

// TestConcatChildPanicContained covers execAll's worker goroutines: one
// panicking branch among healthy ones fails the query, not the process,
// and every branch worker drains.
func TestConcatChildPanicContained(t *testing.T) {
	for _, par := range []int{1, 8} {
		t.Run(fmt.Sprintf("par=%d", par), func(t *testing.T) {
			ctx := ctxAt(par, map[string]*relation.Relation{"t": panicRel()})
			plan := NewConcat(NewScan("t"), &boomNode{}, NewScan("t"))
			_, err := ctx.Exec(context.Background(), plan)
			if _, ok := AsPanicError(err); !ok {
				t.Fatalf("err = %v, want *PanicError", err)
			}
			if _, err := ctx.Exec(context.Background(), NewConcat(NewScan("t"), NewScan("t"))); err != nil {
				t.Fatalf("query after contained panic: %v", err)
			}
		})
	}
}
