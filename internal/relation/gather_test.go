package relation

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"irdb/internal/vector"
)

// randTestRel builds a relation with duplicate-heavy columns so ordering
// ties are common.
func randTestRel(r *rand.Rand, n int) *Relation {
	a := make([]int64, n)
	b := make([]string, n)
	p := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = int64(r.Intn(7))
		b[i] = fmt.Sprintf("s%d", r.Intn(3))
		p[i] = float64(r.Intn(4)) / 4 // quantized: long runs of equal probabilities
	}
	return MustFromColumns([]Column{
		{Name: "a", Vec: vector.FromInt64s(a)},
		{Name: "b", Vec: vector.FromStrings(b)},
	}, p)
}

// TestGatherRangeIntoMatchesGather fills a NewSizedLike destination from
// disjoint chunks and compares against the serial Gather, including the
// probability column.
func TestGatherRangeIntoMatchesGather(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	rel := randTestRel(r, 500)
	sel := make([]int, 1234)
	for i := range sel {
		sel[i] = r.Intn(rel.NumRows())
	}
	want := rel.Gather(sel)
	dst := rel.NewSizedLike(len(sel))
	for lo := 0; lo < len(sel); lo += 217 {
		hi := lo + 217
		if hi > len(sel) {
			hi = len(sel)
		}
		rel.GatherRangeInto(dst, sel, lo, hi)
	}
	if dst.NumRows() != want.NumRows() || dst.NumCols() != want.NumCols() {
		t.Fatalf("shape %dx%d, want %dx%d", dst.NumRows(), dst.NumCols(), want.NumRows(), want.NumCols())
	}
	wp, gp := want.Prob(), dst.Prob()
	for i := 0; i < want.NumRows(); i++ {
		for c := 0; c < want.NumCols(); c++ {
			if !want.Col(c).Vec.EqualAt(i, dst.Col(c).Vec, i) {
				t.Fatalf("row %d col %d: %s != %s", i, c, dst.Col(c).Vec.Format(i), want.Col(c).Vec.Format(i))
			}
		}
		if wp[i] != gp[i] {
			t.Fatalf("row %d prob %v != %v", i, gp[i], wp[i])
		}
	}
}

// TestCompareRowsReproducesSortedSel re-derives the stable-sort
// permutation from CompareRows plus the original-index tie-break and
// checks it is exactly SortedSel's output — the identity the engine's
// parallel TopN merge depends on.
func TestCompareRowsReproducesSortedSel(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	rel := randTestRel(r, 2000)
	keySets := [][]SortKey{
		{{Col: 0}},
		{{Col: ProbCol, Desc: true}, {Col: 0}},
		{{Col: 1, Desc: true}, {Col: ProbCol}},
		{{Col: 0}, {Col: 1}, {Col: ProbCol, Desc: true}},
	}
	for ki, keys := range keySets {
		want := rel.SortedSel(keys)
		got := make([]int, rel.NumRows())
		for i := range got {
			got[i] = i
		}
		sort.Slice(got, func(a, b int) bool {
			if c := rel.CompareRows(keys, got[a], got[b]); c != 0 {
				return c < 0
			}
			return got[a] < got[b]
		})
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("keys %d: position %d = row %d, want %d", ki, i, got[i], want[i])
			}
		}
		// Antisymmetry spot check.
		for trial := 0; trial < 200; trial++ {
			i, j := r.Intn(rel.NumRows()), r.Intn(rel.NumRows())
			if rel.CompareRows(keys, i, j) != -rel.CompareRows(keys, j, i) {
				t.Fatalf("keys %d: CompareRows(%d,%d) not antisymmetric", ki, i, j)
			}
		}
	}
}

// TestNilProbConcurrentReads: a relation whose probability column was
// never materialized (prob == nil) must be safe to read from concurrent
// morsels — GatherRangeInto and CompareRows may not trigger Prob()'s lazy
// initialization. Run under -race; also checks the all-certain semantics.
func TestNilProbConcurrentReads(t *testing.T) {
	n := 1000
	a := make([]int64, n)
	for i := range a {
		a[i] = int64(i % 5)
	}
	rel := &Relation{cols: []Column{{Name: "a", Vec: vector.FromInt64s(a)}}} // prob nil
	sel := make([]int, n)
	for i := range sel {
		sel[i] = (i * 7) % n
	}
	dst := rel.NewSizedLike(n)
	keys := []SortKey{{Col: ProbCol, Desc: true}, {Col: 0}}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo, hi := w*n/4, (w+1)*n/4
			rel.GatherRangeInto(dst, sel, lo, hi)
			for i := lo; i < hi-1; i++ {
				rel.CompareRows(keys, i, i+1)
			}
		}(w)
	}
	wg.Wait()
	if rel.prob != nil {
		t.Fatal("concurrent readers materialized the lazy prob column")
	}
	for i, p := range dst.Prob() {
		if p != 1.0 {
			t.Fatalf("gathered prob[%d] = %v, want 1.0 (all-certain)", i, p)
		}
	}
	want := rel.Gather(sel)
	for i := 0; i < n; i++ {
		if !want.Col(0).Vec.EqualAt(i, dst.Col(0).Vec, i) {
			t.Fatalf("row %d: %s != %s", i, dst.Col(0).Vec.Format(i), want.Col(0).Vec.Format(i))
		}
	}
}

func TestRelationEstimatedBytes(t *testing.T) {
	rel := MustFromColumns([]Column{
		{Name: "a", Vec: vector.FromInt64s(make([]int64, 4))},
		{Name: "s", Vec: vector.FromStrings([]string{"ab", "", "c", ""})},
	}, nil)
	want := int64(4*8) + int64(4*8) + int64(4*16+3)
	if got := rel.EstimatedBytes(); got != want {
		t.Errorf("EstimatedBytes = %d, want %d", got, want)
	}
}
