package experiments

import (
	"context"
	"fmt"

	"irdb/internal/bench"
	"irdb/internal/ir"
	"irdb/internal/workload"
)

// E5 isolates the on-demand indexing claim of section 2.1: "the ability
// to create such index structures on-demand is crucial", enabled by the
// fact that "most of the SQL queries above are independent of query-terms,
// which allows to materialize intermediate results for reuse in different
// search scenarios on the same data". We measure:
//
//   - cold index construction (first search pays it),
//   - hot query latency afterwards,
//   - a second searcher with the same parameters on the same collection,
//     whose "build" is answered entirely from the shared cache,
//   - a searcher with different parameters (stemmer), which must NOT share
//     and pays its own build.
func E5(cfg Config) (*Result, error) {
	n := cfg.size(15000)
	docs := workload.GenDocs(n, 80, 30000, cfg.Seed)
	queries := workload.Queries(cfg.reps(15), 3, 30000, cfg.Seed+2)
	ctx, scan := newDocsCtx(cfg, docs)

	s1, err := ir.NewSearcher(ctx, scan, ir.DefaultParams())
	if err != nil {
		return nil, err
	}
	cold, err := bench.Measure(1, func() error { return s1.BuildIndex(context.Background()) })
	if err != nil {
		return nil, err
	}
	if _, err := s1.Search(context.Background(), queries[0], 10); err != nil {
		return nil, err
	}
	qi := 0
	hot, err := bench.Measure(len(queries), func() error {
		_, err := s1.Search(context.Background(), queries[qi%len(queries)], 10)
		qi++
		return err
	})
	if err != nil {
		return nil, err
	}

	// Same parameters, new searcher instance: everything is shared.
	s2, err := ir.NewSearcher(ctx, scan, ir.DefaultParams())
	if err != nil {
		return nil, err
	}
	shared, err := bench.Measure(1, func() error { return s2.BuildIndex(context.Background()) })
	if err != nil {
		return nil, err
	}

	// Different stemming choice: a different index, built on demand.
	p3 := ir.DefaultParams()
	p3.Stemmer = "porter"
	s3, err := ir.NewSearcher(ctx, scan, p3)
	if err != nil {
		return nil, err
	}
	rebuild, err := bench.Measure(1, func() error { return s3.BuildIndex(context.Background()) })
	if err != nil {
		return nil, err
	}

	speedup := float64(cold.Mean()) / float64(hot.P(0.5))

	table := &bench.Table{
		Title:  fmt.Sprintf("E5: on-demand indexing, %d docs", n),
		Header: []string{"phase", "latency"},
	}
	table.AddRow("cold build (first search pays this)", cold.Mean())
	table.AddRow("hot query p50", hot.P(0.5))
	table.AddRow("second searcher, same params (cache shared)", shared.Mean())
	table.AddRow("searcher with different stemmer (new index)", rebuild.Mean())
	table.AddNote("cold/hot ratio %.0fx; same-parameter reuse is effectively free; changed parameters correctly trigger a rebuild", speedup)

	return &Result{
		ID:         "E5",
		Name:       "on-demand index construction and reuse (sections 2.1, 3)",
		PaperClaim: "indexes are created on demand at query time ('no specific indexing configuration was required') and query-independent intermediates are materialized for reuse across search scenarios",
		Finding: fmt.Sprintf("cold build %s vs hot query %s (%.0fx); same-parameter searcher builds in %s from the shared cache",
			bench.Ms(cold.Mean()), bench.Ms(hot.P(0.5)), speedup, bench.Ms(shared.Mean())),
		Tables: []*bench.Table{table},
	}, nil
}
