package catalog

import (
	"context"
	"testing"

	"irdb/internal/relation"
	"irdb/internal/vector"
)

func oneRow(v int64) *relation.Relation {
	return relation.NewBuilder([]string{"x"}, []vector.Kind{vector.Int64}).Add(v).Build()
}

// TestPutDeltaInvalidatesSelectively is the watermark invalidation rule of
// the durability model: an append to table b evicts only the cache entries
// depending on b (or with unknown deps); entries over a stay resident.
func TestPutDeltaInvalidatesSelectively(t *testing.T) {
	ctx := context.Background()
	c := New(0)
	c.Put("a", oneRow(1))
	c.Put("b", oneRow(2))

	compute := func(v int64) func(context.Context) (*relation.Relation, error) {
		return func(context.Context) (*relation.Relation, error) { return oneRow(v), nil }
	}
	if _, hit, err := c.Cache().GetOrComputeDeps(ctx, "qa", []string{"a"}, compute(10)); err != nil || hit {
		t.Fatalf("qa first compute: hit=%v err=%v", hit, err)
	}
	if _, hit, err := c.Cache().GetOrComputeDeps(ctx, "qb", []string{"b"}, compute(20)); err != nil || hit {
		t.Fatalf("qb first compute: hit=%v err=%v", hit, err)
	}
	// An entry whose dependency set is unknown must be treated
	// conservatively: any publish evicts it.
	if _, hit, err := c.Cache().GetOrCompute(ctx, "qnil", compute(30)); err != nil || hit {
		t.Fatalf("qnil first compute: hit=%v err=%v", hit, err)
	}

	c.PutDelta("b", oneRow(3))

	if _, ok := c.Cache().Get("qa"); !ok {
		t.Error("entry over table a evicted by an append to table b")
	}
	if _, ok := c.Cache().Get("qb"); ok {
		t.Error("entry over table b survived an append to table b")
	}
	if _, ok := c.Cache().Get("qnil"); ok {
		t.Error("unknown-deps entry survived a publish")
	}
	if st := c.Cache().Stats(); st.DepInvalidations != 2 {
		t.Errorf("DepInvalidations = %d, want 2 (qb + qnil)", st.DepInvalidations)
	}

	// The surviving entry is a real hit, not a recompute.
	if _, hit, err := c.Cache().GetOrComputeDeps(ctx, "qa", []string{"a"}, compute(99)); err != nil || !hit {
		t.Fatalf("qa after unrelated append: hit=%v err=%v", hit, err)
	}
}

// TestStaleFlightResultIsDropped: a result computed while its dependency
// was republished mid-flight must not be inserted — the next lookup
// recomputes against the new table version.
func TestStaleFlightResultIsDropped(t *testing.T) {
	ctx := context.Background()
	c := New(0)
	c.Put("a", oneRow(1))
	rel, hit, err := c.Cache().GetOrComputeDeps(ctx, "q", []string{"a"}, func(context.Context) (*relation.Relation, error) {
		// The append lands while the query is computing.
		c.PutDelta("a", oneRow(2))
		return oneRow(10), nil
	})
	if err != nil || hit || rel == nil {
		t.Fatalf("in-flight compute: hit=%v err=%v", hit, err)
	}
	if _, ok := c.Cache().Get("q"); ok {
		t.Error("stale flight result was cached")
	}
	if st := c.Cache().Stats(); st.StaleDrops != 1 {
		t.Errorf("StaleDrops = %d, want 1", st.StaleDrops)
	}
}
