// Package triple implements the flexible data model of section 2.2: a
// probabilistic triple store on top of the relational engine. Statements
// are (subject, property, object, p) tuples — "semantic triples no longer
// encode facts, but rather uncertain events" (section 2.3).
//
// Two of the paper's storage decisions are reproduced:
//
//   - data-driven partitioning "by the physical data type of objects":
//     string-, integer- and float-valued triples live in separate base
//     tables (triples_str, triples_int, triples_flt);
//   - on-demand vertical partitioning: per-property selections are plans
//     wrapped in Materialize, so the catalog cache adaptively builds the
//     equivalent of Abadi-style property tables for exactly the
//     properties queries touch.
package triple

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"irdb/internal/catalog"
	"irdb/internal/engine"
	"irdb/internal/expr"
	"irdb/internal/relation"
	"irdb/internal/vector"
)

// Table names used in the catalog.
const (
	TableStr = "triples_str"
	TableInt = "triples_int"
	TableFlt = "triples_flt"
)

// Column names of every triples table.
const (
	ColSubject  = "subject"
	ColProperty = "property"
	ColObject   = "object"
)

// Triple is one statement. Exactly one of Str/Int/Flt is meaningful,
// selected by Kind.
type Triple struct {
	Subject  string
	Property string
	Obj      Object
	P        float64 // tuple probability; 1.0 for facts
}

// Object is a typed triple object.
type Object struct {
	Kind vector.Kind
	Str  string
	Int  int64
	Flt  float64
}

// String makes a string object.
func String(s string) Object { return Object{Kind: vector.String, Str: s} }

// Int makes an integer object.
func Int(i int64) Object { return Object{Kind: vector.Int64, Int: i} }

// Float makes a float object.
func Float(f float64) Object { return Object{Kind: vector.Float64, Flt: f} }

// Format renders the object value as text.
func (o Object) Format() string {
	switch o.Kind {
	case vector.String:
		return o.Str
	case vector.Int64:
		return strconv.FormatInt(o.Int, 10)
	case vector.Float64:
		return strconv.FormatFloat(o.Flt, 'g', -1, 64)
	default:
		return fmt.Sprintf("?kind=%v", o.Kind)
	}
}

// partition indices into Store.parts.
const (
	partStr = iota
	partInt
	partFlt
	numParts
)

var partTables = [numParts]string{TableStr, TableInt, TableFlt}

// part is the mutable ingest state of one object-type partition: raw
// dictionary codes and typed object values, appended to by live ingest
// and copied into a fresh immutable relation at publish time.
type part struct {
	subj, prop []int32
	objStr     []int32   // string partition only
	objInt     []int64   // int partition only
	objFlt     []float64 // float partition only
	prob       []float64
}

func (p *part) rows() int { return len(p.subj) }

// Store is a loaded triple collection bound to a catalog. The catalog
// holds the published, immutable relations queries read; the store
// additionally keeps the mutable ingest state they were built from — an
// append-only string dictionary shared by all partitions plus raw code
// columns per partition — so live ingest can append and delete rows and
// republish only the partitions that changed (delta segments over the
// frozen base). Mutating methods (Load, Append, Delete, AdoptCatalog)
// must be serialized by the caller — the ingest manager does; readers go
// through the catalog and only ever see fully published relations.
type Store struct {
	cat    *catalog.Catalog
	dict   *vector.Dict
	frozen *vector.FrozenDict // successor view covering every current code
	parts  [numParts]part
}

// NewStore registers empty triples tables in the catalog and returns the
// store.
func NewStore(cat *catalog.Catalog) *Store {
	s := &Store{cat: cat}
	s.Load(nil)
	return s
}

// addRow interns one triple into the mutable state, returning the
// partition it landed in (-1 for an unknown object kind).
func (s *Store) addRow(t Triple) int {
	p := t.P
	if p == 0 {
		p = 1.0
	}
	var pi int
	switch t.Obj.Kind {
	case vector.String:
		pi = partStr
	case vector.Int64:
		pi = partInt
	case vector.Float64:
		pi = partFlt
	default:
		return -1
	}
	// Subjects, properties and string objects all intern into ONE shared
	// dictionary, so every self-join of the store — including traversals
	// matching subjects against objects (graph edges) — hashes and
	// compares int32 codes instead of re-reading string bytes.
	part := &s.parts[pi]
	part.subj = append(part.subj, int32(s.dict.Put(t.Subject)))
	part.prop = append(part.prop, int32(s.dict.Put(t.Property)))
	switch pi {
	case partStr:
		part.objStr = append(part.objStr, int32(s.dict.Put(t.Obj.Str)))
	case partInt:
		part.objInt = append(part.objInt, t.Obj.Int)
	case partFlt:
		part.objFlt = append(part.objFlt, t.Obj.Flt)
	}
	part.prob = append(part.prob, p)
	return pi
}

// freezeIfGrown refreshes the frozen successor dictionary when new
// strings were interned since the last publish. Freeze copies, so codes
// assigned before the freeze keep their meaning in every already
// published relation: the base stays valid next to the delta.
func (s *Store) freezeIfGrown() {
	if s.frozen == nil || s.frozen.Len() != s.dict.Len() {
		s.frozen = s.dict.Freeze()
	}
}

// buildPart copies one partition's mutable state into a fresh immutable
// relation bound to the current frozen dictionary.
func (s *Store) buildPart(pi int) *relation.Relation {
	p := &s.parts[pi]
	var obj relation.Column
	switch pi {
	case partStr:
		obj = relation.Column{Name: ColObject, Vec: vector.FromCodes(s.frozen, append([]int32(nil), p.objStr...))}
	case partInt:
		obj = relation.Column{Name: ColObject, Vec: vector.FromInt64s(append([]int64(nil), p.objInt...))}
	case partFlt:
		obj = relation.Column{Name: ColObject, Vec: vector.FromFloat64s(append([]float64(nil), p.objFlt...))}
	}
	cols := []relation.Column{
		{Name: ColSubject, Vec: vector.FromCodes(s.frozen, append([]int32(nil), p.subj...))},
		{Name: ColProperty, Vec: vector.FromCodes(s.frozen, append([]int32(nil), p.prop...))},
		obj,
	}
	return relation.MustFromColumns(cols, append([]float64(nil), p.prob...))
}

// Load replaces the store contents with the given triples, partitioned by
// object type. The whole materialization cache is invalidated (the
// catalog does this on table replacement).
func (s *Store) Load(triples []Triple) {
	s.dict = vector.NewDict(len(triples) / 4)
	s.frozen = nil
	s.parts = [numParts]part{}
	for _, t := range triples {
		s.addRow(t)
	}
	s.freezeIfGrown()
	for pi := 0; pi < numParts; pi++ {
		s.cat.Put(partTables[pi], s.buildPart(pi))
	}
}

// Append adds triples to the store as a delta over the published base:
// the shared dictionary grows append-only (existing codes stay valid),
// and only the partitions that actually received rows are republished.
// Cache entries over untouched partitions stay resident — the catalog
// invalidates by watermark, not wholesale. Returns the number of rows
// appended and the new ingest watermark (unchanged when triples is
// empty).
func (s *Store) Append(triples []Triple) (int, uint64) {
	changed := map[string]*relation.Relation{}
	appended := 0
	for _, t := range triples {
		if pi := s.addRow(t); pi >= 0 {
			changed[partTables[pi]] = nil
			appended++
		}
	}
	if len(changed) == 0 {
		return 0, s.cat.Watermark()
	}
	s.freezeIfGrown()
	for pi := 0; pi < numParts; pi++ {
		if _, ok := changed[partTables[pi]]; ok {
			changed[partTables[pi]] = s.buildPart(pi)
		}
	}
	return appended, s.cat.PutDeltas(changed)
}

// Delete removes every row matching one of the given (subject, property,
// object) keys — probabilities are not part of the key — and republishes
// only the partitions that lost rows. A key whose strings were never
// interned matches nothing. Returns the number of rows removed and the
// resulting watermark.
func (s *Store) Delete(keys []Triple) (int, uint64) {
	type key struct {
		subj, prop int32
		objStr     int32
		objInt     int64
		objFlt     float64
	}
	byPart := [numParts]map[key]bool{}
	for _, t := range keys {
		sc, ok1 := s.dict.Lookup(t.Subject)
		pc, ok2 := s.dict.Lookup(t.Property)
		if !ok1 || !ok2 {
			continue
		}
		k := key{subj: int32(sc), prop: int32(pc)}
		var pi int
		switch t.Obj.Kind {
		case vector.String:
			oc, ok := s.dict.Lookup(t.Obj.Str)
			if !ok {
				continue
			}
			pi, k.objStr = partStr, int32(oc)
		case vector.Int64:
			pi, k.objInt = partInt, t.Obj.Int
		case vector.Float64:
			pi, k.objFlt = partFlt, t.Obj.Flt
		default:
			continue
		}
		if byPart[pi] == nil {
			byPart[pi] = make(map[key]bool)
		}
		byPart[pi][k] = true
	}
	changed := map[string]*relation.Relation{}
	removed := 0
	for pi := 0; pi < numParts; pi++ {
		if byPart[pi] == nil {
			continue
		}
		p := &s.parts[pi]
		w := 0
		for i := 0; i < p.rows(); i++ {
			k := key{subj: p.subj[i], prop: p.prop[i]}
			switch pi {
			case partStr:
				k.objStr = p.objStr[i]
			case partInt:
				k.objInt = p.objInt[i]
			case partFlt:
				k.objFlt = p.objFlt[i]
			}
			if byPart[pi][k] {
				removed++
				continue
			}
			p.subj[w], p.prop[w], p.prob[w] = p.subj[i], p.prop[i], p.prob[i]
			switch pi {
			case partStr:
				p.objStr[w] = p.objStr[i]
			case partInt:
				p.objInt[w] = p.objInt[i]
			case partFlt:
				p.objFlt[w] = p.objFlt[i]
			}
			w++
		}
		if w < p.rows() {
			p.subj, p.prop, p.prob = p.subj[:w], p.prop[:w], p.prob[:w]
			switch pi {
			case partStr:
				p.objStr = p.objStr[:w]
			case partInt:
				p.objInt = p.objInt[:w]
			case partFlt:
				p.objFlt = p.objFlt[:w]
			}
			changed[partTables[pi]] = nil
		}
	}
	if len(changed) == 0 {
		return 0, s.cat.Watermark()
	}
	s.freezeIfGrown()
	for name := range changed {
		for pi := 0; pi < numParts; pi++ {
			if partTables[pi] == name {
				changed[name] = s.buildPart(pi)
			}
		}
	}
	return removed, s.cat.PutDeltas(changed)
}

// Dump decodes the full store contents back into triples, partition by
// partition in row order — the cold-reload comparison point for recovery
// tests and offline verification.
func (s *Store) Dump() ([]Triple, error) {
	var out []Triple
	for pi := 0; pi < numParts; pi++ {
		rel, err := s.cat.Table(partTables[pi])
		if err != nil {
			return nil, err
		}
		ts, err := decodeTable(rel)
		if err != nil {
			return nil, fmt.Errorf("triple: %s: %w", partTables[pi], err)
		}
		out = append(out, ts...)
	}
	return out, nil
}

// AdoptCatalog rebuilds the store's mutable ingest state from whatever
// triples tables the catalog currently holds — the recovery path after a
// snapshot load, where the published relations exist but the raw code
// columns behind them do not. The tables are re-encoded into a fresh
// shared dictionary and republished (legacy snapshots with plain string
// columns adopt fine: decoding falls back to reading strings).
func (s *Store) AdoptCatalog() error {
	triples, err := s.Dump()
	if err != nil {
		return err
	}
	s.Load(triples)
	return nil
}

// decodeTable converts one published triples partition back to triples.
func decodeTable(rel *relation.Relation) ([]Triple, error) {
	subj, err := stringValues(rel, ColSubject)
	if err != nil {
		return nil, err
	}
	prop, err := stringValues(rel, ColProperty)
	if err != nil {
		return nil, err
	}
	objCol, err := rel.ColByName(ColObject)
	if err != nil {
		return nil, err
	}
	prob := rel.Prob()
	out := make([]Triple, rel.NumRows())
	for i := range out {
		out[i] = Triple{Subject: subj[i], Property: prop[i], P: prob[i]}
		switch v := objCol.Vec.(type) {
		case *vector.Int64s:
			out[i].Obj = Int(v.Values()[i])
		case *vector.Float64s:
			out[i].Obj = Float(v.Values()[i])
		default:
			out[i].Obj = String(objCol.Vec.Format(i))
		}
	}
	return out, nil
}

// stringValues reads a column that may be dict-encoded or plain strings.
func stringValues(rel *relation.Relation, name string) ([]string, error) {
	col, err := rel.ColByName(name)
	if err != nil {
		return nil, err
	}
	switch v := col.Vec.(type) {
	case *vector.DictStrings:
		out := make([]string, v.Len())
		for i := range out {
			out[i] = v.At(i)
		}
		return out, nil
	case *vector.Strings:
		return append([]string(nil), v.Values()...), nil
	default:
		return nil, fmt.Errorf("column %q is %T, want strings", name, col.Vec)
	}
}

// Catalog returns the backing catalog.
func (s *Store) Catalog() *catalog.Catalog { return s.cat }

// Counts reports the number of triples per object-type partition.
func (s *Store) Counts() (str, ints, flts int, err error) {
	for _, spec := range []struct {
		table string
		out   *int
	}{{TableStr, &str}, {TableInt, &ints}, {TableFlt, &flts}} {
		rel, terr := s.cat.Table(spec.table)
		if terr != nil {
			return 0, 0, 0, terr
		}
		*spec.out = rel.NumRows()
	}
	return str, ints, flts, nil
}

// ---------------------------------------------------------------------------
// Plans

// ScanAll returns the plan scanning the string-object partition — the
// "triples" table of the paper's examples (descriptions, categories and
// graph edges are all string-valued).
func ScanAll() engine.Node { return engine.NewScan(TableStr) }

// Property returns the on-demand vertically partitioned plan
// SELECT [property = name] (triples): a materialized (subject, object)
// pair table for one property, the adaptive "cache table" of section 2.2.
func Property(name string) engine.Node {
	sel := engine.NewSelect(ScanAll(),
		expr.Cmp{Op: expr.Eq, L: expr.Column(ColProperty), R: expr.Str(name)})
	proj := engine.NewProject(sel,
		engine.ProjCol{Name: ColSubject, E: expr.Column(ColSubject)},
		engine.ProjCol{Name: ColObject, E: expr.Column(ColObject)},
	)
	return engine.NewMaterialize(proj)
}

// PropertyInt is Property for the integer-object partition.
func PropertyInt(name string) engine.Node {
	sel := engine.NewSelect(engine.NewScan(TableInt),
		expr.Cmp{Op: expr.Eq, L: expr.Column(ColProperty), R: expr.Str(name)})
	proj := engine.NewProject(sel,
		engine.ProjCol{Name: ColSubject, E: expr.Column(ColSubject)},
		engine.ProjCol{Name: ColObject, E: expr.Column(ColObject)},
	)
	return engine.NewMaterialize(proj)
}

// SubjectsOfType returns subjects s with a (s, "type", typeName) triple —
// the strategy entry point "select nodes of type lot" of section 3.
// Output column: subject.
func SubjectsOfType(typeName string) engine.Node {
	sel := engine.NewSelect(ScanAll(), expr.And{
		L: expr.Cmp{Op: expr.Eq, L: expr.Column(ColProperty), R: expr.Str("type")},
		R: expr.Cmp{Op: expr.Eq, L: expr.Column(ColObject), R: expr.Str(typeName)},
	})
	proj := engine.NewProject(sel,
		engine.ProjCol{Name: ColSubject, E: expr.Column(ColSubject)})
	return engine.NewMaterialize(proj)
}

// TraverseForward follows property edges from the subjects of in (column
// "subject"): out.subject = object of the edge whose subject matched.
// Probabilities multiply (JOIN INDEPENDENT), so ranked inputs propagate
// their scores through the graph — the "traverse" block of Figure 3.
func TraverseForward(in engine.Node, property string) engine.Node {
	join := engine.NewHashJoin(in, Property(property),
		[]string{ColSubject}, []string{ColSubject}, engine.JoinIndependent)
	// join output: subject, [in extras...], subject_2, object
	return engine.NewProject(join,
		engine.ProjCol{Name: ColSubject, E: expr.Column(ColObject)})
}

// TraverseBackward follows property edges in reverse: given nodes that
// appear as edge objects, returns the edge subjects. Used by Figure 3's
// final step ("traverses hasAuction backward, to obtain lots again").
func TraverseBackward(in engine.Node, property string) engine.Node {
	join := engine.NewHashJoin(in, Property(property),
		[]string{ColSubject}, []string{ColObject}, engine.JoinIndependent)
	// join output: subject(=auction), ..., subject_2(=lot), object(=auction)
	return engine.NewProject(join,
		engine.ProjCol{Name: ColSubject, E: expr.Column(ColSubject + "_2")})
}

// DocsOf builds the (docID, data) collection for keyword search from the
// given nodes (column "subject") and a text property — the docs view of
// section 2.2/2.3, with p = t1.p · t2.p.
func DocsOf(in engine.Node, textProperty string) engine.Node {
	join := engine.NewHashJoin(in, Property(textProperty),
		[]string{ColSubject}, []string{ColSubject}, engine.JoinIndependent)
	return engine.NewProject(join,
		engine.ProjCol{Name: "docID", E: expr.Column(ColSubject)},
		engine.ProjCol{Name: "data", E: expr.Column(ColObject)},
	)
}

// ---------------------------------------------------------------------------
// TSV loading

// ReadTSV parses triples from tab-separated lines:
//
//	subject <TAB> property <TAB> object [<TAB> probability]
//
// Object values are stored typed: integers and floats are detected
// (data-driven partitioning by physical type); everything else is a
// string. Empty lines and lines starting with '#' are skipped.
func ReadTSV(r io.Reader) ([]Triple, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	var out []Triple
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) < 3 || len(fields) > 4 {
			return nil, fmt.Errorf("triple: line %d: want 3 or 4 tab-separated fields, got %d", lineNo, len(fields))
		}
		t := Triple{Subject: fields[0], Property: fields[1], P: 1.0}
		obj := fields[2]
		if i, err := strconv.ParseInt(obj, 10, 64); err == nil {
			t.Obj = Int(i)
		} else if f, err := strconv.ParseFloat(obj, 64); err == nil {
			t.Obj = Float(f)
		} else {
			t.Obj = String(obj)
		}
		if len(fields) == 4 {
			p, err := strconv.ParseFloat(fields[3], 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("triple: line %d: bad probability %q", lineNo, fields[3])
			}
			t.P = p
		}
		out = append(out, t)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteTSV emits triples in the ReadTSV format.
func WriteTSV(w io.Writer, triples []Triple) error {
	bw := bufio.NewWriter(w)
	for _, t := range triples {
		if t.P != 1.0 && t.P != 0 {
			if _, err := fmt.Fprintf(bw, "%s\t%s\t%s\t%g\n", t.Subject, t.Property, t.Obj.Format(), t.P); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(bw, "%s\t%s\t%s\n", t.Subject, t.Property, t.Obj.Format()); err != nil {
			return err
		}
	}
	return bw.Flush()
}
