package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"irdb/internal/catalog"
	"irdb/internal/memory"
)

// budgetPlan is a composite plan hitting every budget charge site: join
// (hashes, build table, pair lists, gathers), selection gather via
// sort/topn, concat prefix sums, and aggregation accumulators.
func budgetPlan() Node {
	join := NewHashJoin(NewScan("fact"), NewMaterialize(NewScan("dim")), []string{"a"}, []string{"a"}, JoinIndependent)
	agg := NewAggregate(join, []string{"b"}, []AggSpec{
		{Op: CountAll, As: "n"},
		{Op: Sum, Col: "x", As: "sx"},
	}, GroupIndependent)
	u := NewUnion(agg, agg)
	return NewSort(u, SortSpec{Col: "b"}, SortSpec{Col: "n", Desc: true})
}

func budgetCatalog() *catalog.Catalog {
	r := rand.New(rand.NewSource(77))
	cat := catalog.New(0)
	cat.Put("fact", randRel(r, 3*minMorsel, 400))
	cat.Put("dim", randRel(r, minMorsel, 400))
	return cat
}

// TestBudgetEquivalence pins that a query under a sufficient budget is
// bit-identical to the unbudgeted path at parallelism 1/2/8 and that
// its reservation is fully returned to the pool.
func TestBudgetEquivalence(t *testing.T) {
	want, err := (&Ctx{Cat: budgetCatalog(), Parallelism: 1}).Exec(context.Background(), budgetPlan())
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 2, 8} {
		ctx := &Ctx{Cat: budgetCatalog(), Parallelism: par, UseCache: true, CacheAll: true}
		pool := memory.NewPool(0)
		res := pool.Reserve(1 << 30)
		c := memory.WithReservation(context.Background(), res)
		got, err := ctx.Exec(c, budgetPlan())
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		mustEqualRel(t, want, got, fmt.Sprintf("budgeted par=%d", par))
		if res.Peak() == 0 {
			t.Fatalf("par=%d: no charges reached the reservation", par)
		}
		res.Release()
		if used := pool.Used(); used != 0 {
			t.Fatalf("par=%d: pool holds %d bytes after release", par, used)
		}
	}
}

// TestBudgetExceeded pins the failure mode: a tiny budget aborts with
// ErrBudgetExceeded (matchable through the operator-label wrapping), the
// error is never cached, and the reservation leaks nothing.
func TestBudgetExceeded(t *testing.T) {
	for _, par := range []int{1, 2, 8} {
		ctx := &Ctx{Cat: budgetCatalog(), Parallelism: par, UseCache: true, CacheAll: true}
		pool := memory.NewPool(0)
		res := pool.Reserve(512) // far below any gather output
		c := memory.WithReservation(context.Background(), res)
		_, err := ctx.Exec(c, budgetPlan())
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("par=%d: err = %v, want ErrBudgetExceeded", par, err)
		}
		var be *memory.BudgetError
		if !errors.As(err, &be) {
			t.Fatalf("par=%d: err %v carries no *memory.BudgetError", par, err)
		}
		if ctx.BudgetDenials() == 0 {
			t.Fatalf("par=%d: denial not counted", par)
		}
		res.Release()
		if used := pool.Used(); used != 0 {
			t.Fatalf("par=%d: pool holds %d bytes after failed query", par, used)
		}

		// The failure must not have been cached: the same plan under no
		// budget must execute cleanly and match the reference.
		want, err := (&Ctx{Cat: budgetCatalog(), Parallelism: 1}).Exec(context.Background(), budgetPlan())
		if err != nil {
			t.Fatal(err)
		}
		got, err := ctx.Exec(context.Background(), budgetPlan())
		if err != nil {
			t.Fatalf("par=%d: unbudgeted rerun after budget failure: %v", par, err)
		}
		mustEqualRel(t, want, got, fmt.Sprintf("rerun par=%d", par))
	}
}

// TestBudgetExceededNotCached drives the never-cached guarantee
// directly: after a budget abort the cache holds no entry for any
// fingerprint of the failed plan.
func TestBudgetExceededNotCached(t *testing.T) {
	cat := budgetCatalog()
	ctx := &Ctx{Cat: cat, Parallelism: 2, UseCache: true, CacheAll: true}
	pool := memory.NewPool(0)
	res := pool.Reserve(512)
	c := memory.WithReservation(context.Background(), res)
	if _, err := ctx.Exec(c, budgetPlan()); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	res.Release()
	// Walk the failed plan: no node whose execution failed may be
	// resident. Leaves (scans) are never cached; the root and the nodes
	// above the failing charge must be absent.
	var walk func(n Node)
	var roots []string
	walk = func(n Node) {
		roots = append(roots, n.Fingerprint())
		for _, ch := range n.Children() {
			walk(ch)
		}
	}
	walk(budgetPlan())
	if _, ok := cat.Cache().Get(roots[0]); ok {
		t.Fatal("failed plan root found in cache")
	}
	if used := pool.Used(); used != 0 {
		t.Fatalf("pool holds %d bytes", used)
	}
}

// TestBudgetPoolCapacity pins the pool-scope denial: two reservations
// against a bounded pool, the second query is refused when the first
// holds the capacity.
func TestBudgetPoolCapacity(t *testing.T) {
	pool := memory.NewPool(4096)
	holder := pool.Reserve(0)
	if err := holder.Grow(4000); err != nil {
		t.Fatal(err)
	}
	ctx := &Ctx{Cat: budgetCatalog(), Parallelism: 2}
	res := pool.Reserve(0)
	c := memory.WithReservation(context.Background(), res)
	_, err := ctx.Exec(c, budgetPlan())
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want pool-capacity ErrBudgetExceeded", err)
	}
	var be *memory.BudgetError
	if !errors.As(err, &be) || be.Scope != "pool" {
		t.Fatalf("scope = %+v, want pool", be)
	}
	res.Release()
	holder.Release()
	if used := pool.Used(); used != 0 {
		t.Fatalf("pool holds %d bytes", used)
	}
}
