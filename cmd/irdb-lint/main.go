// Command irdb-lint runs the repo's invariant analyzers: the machine
// checks for the contracts PRs 1–9 established in prose and runtime
// tests (panic containment at every spawn site, bit-deterministic
// iteration, context hygiene, budget-charged allocation, wrap-safe error
// matching, registry-backed fault sites) plus stdlib re-implementations
// of the nilness and shadow passes.
//
// Two ways to run it:
//
//	go run ./cmd/irdb-lint ./...            # standalone, human output
//	go vet -vettool=$(which irdb-lint) ./... # as a vet tool (CI)
//
// Both modes type-check with compiler export data via `go list -export`,
// need no network, and exit non-zero on any finding. Suppression is
// per-line and reasoned: //lint:allow <analyzer> <reason>. See
// internal/lint/analysis for the framework and each analyzer package for
// the exact rule it enforces.
package main

import (
	"irdb/internal/lint/multichecker"
	"irdb/internal/lint/suite"
)

func main() {
	multichecker.Main(suite.All()...)
}
