// Package errcmp enforces wrap-safe error matching. The repo's error
// contracts are typed: sentinel values (ErrBudgetExceeded,
// ErrCorruptSnapshot, ErrCorruptWAL, ErrOverloaded, ...) arrive wrapped
// in operator labels per Ctx.Exec's "<label>: %w" convention, and struct
// errors (*fault.PanicError, *engine.BudgetError, *client.APIError)
// arrive behind wrapping too. Comparing with == or a direct type
// assertion silently stops matching the moment anyone adds a wrap layer;
// errors.Is / errors.As are the only comparison forms that survive
// refactoring, so they are the only forms allowed.
package errcmp

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"irdb/internal/lint/analysis"
)

// Analyzer flags ==/!= against sentinel errors and type assertions or
// type switches on error values.
var Analyzer = &analysis.Analyzer{
	Name: "errcmp",
	Doc: `report error comparisons that break under wrapping

Sentinel errors (package-level Err* variables) must be matched with
errors.Is, and concrete error types extracted with errors.As — never
with == / != or a type assertion/switch on an error value, which fail to
match wrapped errors.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if pass.InTestFile(n.Pos()) {
					return true
				}
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if isNil(pass, n.X) || isNil(pass, n.Y) {
					return true
				}
				if name, ok := sentinelName(pass, n.X); ok {
					pass.Reportf(n.Pos(), "comparing a sentinel error with %s breaks under wrapping; use errors.Is(err, %s)", n.Op, name)
				} else if name, ok := sentinelName(pass, n.Y); ok {
					pass.Reportf(n.Pos(), "comparing a sentinel error with %s breaks under wrapping; use errors.Is(err, %s)", n.Op, name)
				}
			case *ast.TypeAssertExpr:
				if pass.InTestFile(n.Pos()) || n.Type == nil {
					return true
				}
				if isErrorExpr(pass, n.X) {
					pass.Reportf(n.Pos(), "type assertion on an error value misses wrapped errors; use errors.As")
				}
			case *ast.TypeSwitchStmt:
				if pass.InTestFile(n.Pos()) {
					return true
				}
				if x := typeSwitchSubject(n); x != nil && isErrorExpr(pass, x) {
					pass.Reportf(n.Pos(), "type switch on an error value misses wrapped errors; use errors.As per candidate type")
				}
			}
			return true
		})
	}
	return nil
}

// sentinelName reports whether e names a package-level error variable in
// the Err* naming convention, returning the name to suggest in the fix.
func sentinelName(pass *analysis.Pass, e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", false
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || !strings.HasPrefix(v.Name(), "Err") {
		return "", false
	}
	// Package-level only: a local `var errDone = errors.New(...)` used as
	// a loop-break signal within one function cannot be wrapped.
	if v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	if !types.AssignableTo(v.Type(), analysis.ErrorType) {
		return "", false
	}
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if x, ok := sel.X.(*ast.Ident); ok {
			return x.Name + "." + id.Name, true
		}
	}
	return id.Name, true
}

// isErrorExpr reports whether e's static type is exactly the error
// interface.
func isErrorExpr(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	return t != nil && types.Identical(t, analysis.ErrorType)
}

// typeSwitchSubject extracts the switched-on expression from
// `switch x := e.(type)` / `switch e.(type)`.
func typeSwitchSubject(n *ast.TypeSwitchStmt) ast.Expr {
	var assert *ast.TypeAssertExpr
	switch s := n.Assign.(type) {
	case *ast.ExprStmt:
		assert, _ = s.X.(*ast.TypeAssertExpr)
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			assert, _ = s.Rhs[0].(*ast.TypeAssertExpr)
		}
	}
	if assert == nil {
		return nil
	}
	return assert.X
}

// isNil reports whether e is the untyped nil.
func isNil(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}
