package expr

import (
	"hash/maphash"
	"strings"
	"testing"

	"irdb/internal/relation"
	"irdb/internal/vector"
)

// constRefRel builds a relation with one column per kind, values chosen
// to exercise <, =, > against the literals below.
func constRefRel() *relation.Relation {
	return relation.MustFromColumns([]relation.Column{
		{Name: "i", Vec: vector.FromInt64s([]int64{-3, 0, 7, 7, 100})},
		{Name: "f", Vec: vector.FromFloat64s([]float64{-0.5, 0, 7, 7.5, 100})},
		{Name: "s", Vec: vector.FromStrings([]string{"a", "m", "m", "z", ""})},
		{Name: "b", Vec: vector.FromBools([]bool{true, false, true, false, true})},
		{Name: "d", Vec: vector.EncodeStrings(vector.FromStrings([]string{"a", "m", "m", "z", ""}))},
	}, nil)
}

// TestCmpConstMatchesMaterialized: every comparison against a literal
// (the vector.Const scalar fast path) produces exactly the booleans the
// generic loops produce over the materialized constant column.
func TestCmpConstMatchesMaterialized(t *testing.T) {
	r := constRefRel()
	ops := []CmpOp{Eq, Ne, Lt, Le, Gt, Ge}
	cases := []struct {
		name string
		col  Expr
		lit  Lit
	}{
		{"int-int", Column("i"), Int(7)},
		{"int-float", Column("i"), Float(6.5)},
		{"float-int", Column("f"), Int(7)},
		{"float-float", Column("f"), Float(7.0)},
		{"str-str", Column("s"), Str("m")},
		{"dict-str", Column("d"), Str("m")},
		{"dict-absent", Column("d"), Str("not-there")},
	}
	for _, tc := range cases {
		for _, op := range ops {
			// Fast path: literal operand evaluates to a Const.
			fast, err := Cmp{Op: op, L: tc.col, R: tc.lit}.Eval(r)
			if err != nil {
				t.Fatalf("%s %v: %v", tc.name, op, err)
			}
			// Reference: the same comparison with the constant column
			// materialized up front (what Lit.Eval used to produce).
			lv, _ := tc.col.Eval(r)
			mat, _ := tc.lit.Eval(r)
			ref := referenceCmp(t, op, vector.MaterializeConst(lv), vector.MaterializeConst(mat))
			got := fast.(*vector.Bools).Values()
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("%s %v row %d: fast=%v ref=%v", tc.name, op, i, got[i], ref[i])
				}
			}
			// Flipped orientation (literal on the left).
			flip, err := Cmp{Op: op, L: tc.lit, R: tc.col}.Eval(r)
			if err != nil {
				t.Fatalf("flipped %s %v: %v", tc.name, op, err)
			}
			refFlip := referenceCmp(t, op, vector.MaterializeConst(mat), vector.MaterializeConst(lv))
			gotFlip := flip.(*vector.Bools).Values()
			for i := range refFlip {
				if gotFlip[i] != refFlip[i] {
					t.Fatalf("flipped %s %v row %d: fast=%v ref=%v", tc.name, op, i, gotFlip[i], refFlip[i])
				}
			}
		}
	}
}

// referenceCmp runs the generic comparison loops over two dense vectors
// by wrapping them as columns of a scratch relation.
func referenceCmp(t *testing.T, op CmpOp, l, r vector.Vector) []bool {
	t.Helper()
	scratch := relation.MustFromColumns([]relation.Column{
		{Name: "l", Vec: l}, {Name: "r", Vec: r},
	}, nil)
	v, err := (Cmp{Op: op, L: Column("l"), R: Column("r")}).Eval(scratch)
	if err != nil {
		t.Fatalf("reference cmp: %v", err)
	}
	return v.(*vector.Bools).Values()
}

// TestCmpConstConst: comparisons between two literals fold to a single
// scalar comparison filling every row.
func TestCmpConstConst(t *testing.T) {
	r := constRefRel()
	v, err := Cmp{Op: Lt, L: Int(3), R: Int(4)}.Eval(r)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range v.(*vector.Bools).Values() {
		if !b {
			t.Fatalf("row %d: 3 < 4 = false", i)
		}
	}
	if _, err := (Cmp{Op: Lt, L: BoolLit(true), R: BoolLit(false)}).Eval(r); err == nil {
		t.Fatal("ordering booleans must error")
	}
}

// TestArithConstFolding: arithmetic over literals yields a Const; mixed
// dense/const arithmetic matches the fully materialized computation.
func TestArithConstFolding(t *testing.T) {
	r := constRefRel()
	v, err := Arith{Op: Mul, L: Int(6), R: Int(7)}.Eval(r)
	if err != nil {
		t.Fatal(err)
	}
	cv, ok := v.(*vector.Const)
	if !ok || cv.Int64Value() != 42 || cv.Len() != r.NumRows() {
		t.Fatalf("6*7 = %#v", v)
	}
	// 2*3 stays scalar into the enclosing comparison.
	sel, err := Cmp{Op: Ge, L: Column("i"), R: Arith{Op: Mul, L: Int(2), R: Int(3)}}.Eval(r)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{false, false, true, true, true}
	for i, b := range sel.(*vector.Bools).Values() {
		if b != want[i] {
			t.Fatalf("i >= 2*3 row %d = %v", i, b)
		}
	}
	// Const op column.
	sum, err := Arith{Op: Add, L: Float(1.5), R: Column("f")}.Eval(r)
	if err != nil {
		t.Fatal(err)
	}
	got := sum.(*vector.Float64s).Values()
	fv := []float64{-0.5, 0, 7, 7.5, 100}
	for i := range got {
		if got[i] != 1.5+fv[i] {
			t.Fatalf("1.5+f row %d = %v", i, got[i])
		}
	}
}

// TestConstHashMatchesMaterialized: a Const column hashes every row to
// exactly the hash of the materialized column, so a Const leaking into a
// hash-keyed operator could never change results.
func TestConstHashMatchesMaterialized(t *testing.T) {
	for _, v := range []vector.Vector{
		vector.ConstInt64(42, 5),
		vector.ConstFloat64(0.5, 5),
		vector.ConstString("x", 5),
		vector.ConstBool(true, 5),
	} {
		seed := maphash.MakeSeed()
		a := make([]uint64, v.Len())
		b := make([]uint64, v.Len())
		v.HashInto(seed, a)
		v.(*vector.Const).Materialize().HashInto(seed, b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("kind %v row %d: const hash %x != materialized %x", v.Kind(), i, a[i], b[i])
			}
		}
	}
}

// TestParamEvalAndBind: unbound parameters refuse to evaluate, Bind
// substitutes them, and param-free subexpressions are returned untouched.
func TestParamEvalAndBind(t *testing.T) {
	r := constRefRel()
	p := Param{Name: "x"}
	if _, err := p.Eval(r); err == nil || !strings.Contains(err.Error(), "unbound parameter ?x") {
		t.Fatalf("unbound eval err = %v", err)
	}
	if p.String() != "?x" {
		t.Fatalf("String = %q", p.String())
	}

	free := Cmp{Op: Eq, L: Column("s"), R: Str("m")}
	withParam := And{L: free, R: Cmp{Op: Gt, L: Column("i"), R: Param{Name: "min"}}}
	bound, changed, err := Bind(withParam, func(name string) (Lit, bool) {
		if name == "min" {
			return Int(0), true
		}
		return Lit{}, false
	})
	if err != nil || !changed {
		t.Fatalf("Bind: changed=%v err=%v", changed, err)
	}
	// The param-free left side is shared, not copied.
	if bound.(And).L.(Cmp) != free {
		t.Fatal("param-free subexpression was copied by Bind")
	}
	v, err := bound.Eval(r)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{false, false, true, false, false}
	for i, b := range v.(*vector.Bools).Values() {
		if b != want[i] {
			t.Fatalf("bound eval row %d = %v", i, b)
		}
	}
	// Missing binding errors.
	if _, _, err := Bind(withParam, func(string) (Lit, bool) { return Lit{}, false }); err == nil {
		t.Fatal("Bind with missing binding must error")
	}
	// Params collection.
	names := Params(withParam, nil)
	if len(names) != 1 || names[0] != "min" {
		t.Fatalf("Params = %v", names)
	}
}
