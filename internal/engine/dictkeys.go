package engine

import (
	"context"
	"hash/maphash"

	"irdb/internal/relation"
	"irdb/internal/vector"
)

// Key-representation alignment for the hash-based binary operators.
//
// Dict-encoded string columns hash their int32 codes, not the string
// payload, so their hashes live in a per-dictionary domain. Whenever two
// relations are hashed with one seed and cross-compared (hash join,
// Subtract's anti-join), the probe side must present each key column in
// the build side's domain:
//
//   - build column dict-encoded, probe sharing the same dict: free — the
//     codes already agree (the common case: both sides loaded, or derived
//     by the same materialized plan).
//   - build column dict-encoded, probe in any other representation: the
//     probe column is re-encoded through the build dict (one map lookup
//     per row; unknown strings get the invalid code -1, which matches no
//     build row). The cached build-side index stays valid for every later
//     probe, whatever its representation.
//   - build column a plain string column, probe dict-encoded: the probe
//     column is decoded once.
//
// Equality during the probe then goes through vector.EqualAt on the
// aligned vectors, which compares codes when the dicts agree and strings
// otherwise — so results never depend on dict sharing, only speed does.

// colVecs extracts the vectors at the given column positions.
func colVecs(r *relation.Relation, idx []int) []vector.Vector {
	out := make([]vector.Vector, len(idx)) //lint:allow chargedalloc O(#key columns) headers; vectors are shared, not copied
	for k, ci := range idx {
		out[k] = r.Col(ci).Vec
	}
	return out
}

// alignProbeVecs returns the probe-side key vectors adapted to the build
// side's hash domains, per the rules above. Non-string columns and
// already-aligned columns are returned as-is.
//
// Re-encodings are memoized per (probe vector, build dict) pair on the
// Ctx: repeated executions probing an encoded build side with the same
// plain column — a base-table or cached-materialization probe re-run per
// request, the ROADMAP's "repeated probes of uncached build sides" shape
// — reuse one EncodeLookup result instead of re-walking the probe
// strings every execution. Both the probe vector and the frozen dict are
// immutable, so a hit is always valid.
func alignProbeVecs(ctx *Ctx, probe, build []vector.Vector) []vector.Vector {
	out := make([]vector.Vector, len(probe)) //lint:allow chargedalloc O(#key columns) headers; re-encodings are capped by the memo byte bound
	for k, pv := range probe {
		out[k] = pv
		if bd, ok := build[k].(*vector.DictStrings); ok {
			if pd, ok := pv.(*vector.DictStrings); ok && pd.Dict() == bd.Dict() {
				continue // already in the build side's code space
			}
			if sc, ok := pv.(vector.StringColumn); ok {
				out[k] = ctx.encodeLookupMemo(bd.Dict(), pv, sc)
			}
			continue
		}
		if pd, ok := pv.(*vector.DictStrings); ok {
			out[k] = pd.Decode()
		}
	}
	return out
}

// encodeMemoKey identifies one memoized probe re-encoding: the probe
// vector (by identity — vectors are immutable) and the target dictionary.
// Identity keying means only stable probe vectors — base-table columns
// and cached materializations re-probing an encoded build side of a
// different dict — ever hit; a probe allocated fresh per query misses by
// construction (it is a different vector) and only costs one map insert.
type encodeMemoKey struct {
	probe vector.Vector
	dict  *vector.FrozenDict
}

const (
	// encodeMemoCap bounds the memo's entry count.
	encodeMemoCap = 256
	// encodeMemoMaxEntryBytes skips memoizing huge one-shot probes:
	// entries pin their probe vector (and its encoding) on the long-lived
	// Ctx, outside the catalog cache's byte budget, so only modest
	// vectors are worth keeping.
	encodeMemoMaxEntryBytes = 1 << 20
	// encodeMemoMaxBytes bounds the memo's total pinned footprint; the
	// memo resets wholesale when an insert would exceed it, releasing
	// every pinned vector to the GC.
	encodeMemoMaxBytes = 8 << 20
)

// encodeLookupMemo returns vector.EncodeLookup(dict, sc), reusing a prior
// result for the same (probe vector, dict) pair when available.
func (ctx *Ctx) encodeLookupMemo(dict *vector.FrozenDict, pv vector.Vector, sc vector.StringColumn) *vector.DictStrings {
	key := encodeMemoKey{probe: pv, dict: dict}
	ctx.encMu.Lock()
	if enc, ok := ctx.encMemo[key]; ok {
		ctx.encMu.Unlock()
		return enc
	}
	ctx.encMu.Unlock()
	enc := vector.EncodeLookup(dict, sc)
	bytes := pv.EstimatedBytes() + int64(enc.Len())*4
	if bytes > encodeMemoMaxEntryBytes {
		return enc
	}
	ctx.encMu.Lock()
	if ctx.encMemo == nil || len(ctx.encMemo) >= encodeMemoCap || ctx.encBytes+bytes > encodeMemoMaxBytes {
		ctx.encMemo = make(map[encodeMemoKey]*vector.DictStrings, 64)
		ctx.encBytes = 0
	}
	if _, dup := ctx.encMemo[key]; !dup {
		ctx.encMemo[key] = enc
		ctx.encBytes += bytes
	}
	ctx.encMu.Unlock()
	return enc
}

// vecsEqual reports whether row i of the left key vectors equals row j of
// the right key vectors, pairwise.
func vecsEqual(l []vector.Vector, i int, r []vector.Vector, j int) bool {
	for k := range l {
		if !l[k].EqualAt(i, r[k], j) {
			return false
		}
	}
	return true
}

// hashVecsParallel hashes n rows of the given key vectors into one sum per
// row, split over morsels like hashRowsParallel. The hash array (8 bytes
// per row) is charged against the query's memory budget before it is
// allocated.
func hashVecsParallel(c context.Context, ctx *Ctx, vecs []vector.Vector, n int, seed maphash.Seed) ([]uint64, error) {
	if err := ctx.charge(c, int64(n)*8); err != nil {
		return nil, err
	}
	sums := make([]uint64, n)
	ctx.parallelRanges(c, n, func(lo, hi int) {
		for _, v := range vecs {
			v.HashRangeInto(seed, sums, lo, hi)
		}
	})
	return sums, nil
}
