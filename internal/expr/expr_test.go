package expr

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"irdb/internal/relation"
	"irdb/internal/vector"
)

func testRel() *relation.Relation {
	return relation.NewBuilder(
		[]string{"term", "tf", "idf"},
		[]vector.Kind{vector.String, vector.Int64, vector.Float64},
	).
		Add("book", 3, 1.5).
		Add("cake", 1, 2.0).
		AddP(0.5, "history", 2, 0.5).
		Build()
}

func evalOK(t *testing.T, e Expr, r *relation.Relation) vector.Vector {
	t.Helper()
	v, err := e.Eval(r)
	if err != nil {
		t.Fatalf("eval %s: %v", e.String(), err)
	}
	return v
}

func TestColumnRefs(t *testing.T) {
	r := testRel()
	v := evalOK(t, Column("term"), r)
	if v.(*vector.Strings).At(0) != "book" {
		t.Error("Column eval wrong")
	}
	v2 := evalOK(t, ColumnAt(2), r)
	if v2.(*vector.Int64s).At(1) != 1 {
		t.Error("ColumnAt eval wrong")
	}
	if _, err := Column("missing").Eval(r); err == nil {
		t.Error("missing column should fail")
	}
	if _, err := ColumnAt(9).Eval(r); err == nil {
		t.Error("out-of-range $9 should fail")
	}
	if _, err := ColumnAt(0).Eval(r); err == nil {
		t.Error("$0 should fail ($n is 1-based)")
	}
	if ColumnAt(2).String() != "$2" {
		t.Errorf("String = %q", ColumnAt(2).String())
	}
}

func TestProbExpr(t *testing.T) {
	r := testRel()
	v := evalOK(t, Prob{}, r).(*vector.Float64s)
	if v.At(2) != 0.5 || v.At(0) != 1.0 {
		t.Errorf("Prob eval = %v", v.Values())
	}
}

func TestLiterals(t *testing.T) {
	// Literals evaluate to vector.Const — a scalar plus a length — and
	// materialize to the dense column they used to produce directly.
	r := testRel()
	cv := evalOK(t, Int(7), r).(*vector.Const)
	if v := cv.Materialize().(*vector.Int64s); cv.Len() != 3 || v.At(1) != 7 {
		t.Error("Int literal wrong")
	}
	if v := evalOK(t, Float(0.5), r).(*vector.Const).Materialize().(*vector.Float64s); v.At(0) != 0.5 {
		t.Error("Float literal wrong")
	}
	if v := evalOK(t, Str("x"), r).(*vector.Const).Materialize().(*vector.Strings); v.At(2) != "x" {
		t.Error("Str literal wrong")
	}
	if v := evalOK(t, BoolLit(true), r).(*vector.Const).Materialize().(*vector.Bools); !v.At(0) {
		t.Error("Bool literal wrong")
	}
	if Str(`a"b`).String() != `"a\"b"` {
		t.Errorf("Str quoting = %s", Str(`a"b`).String())
	}
	if _, err := (Lit{Value: []int{1}}).Eval(r); err == nil {
		t.Error("unsupported literal type should fail")
	}
}

func TestComparisons(t *testing.T) {
	r := testRel()
	cases := []struct {
		e    Expr
		want []bool
	}{
		{Cmp{Op: Eq, L: Column("term"), R: Str("cake")}, []bool{false, true, false}},
		{Cmp{Op: Ne, L: Column("term"), R: Str("cake")}, []bool{true, false, true}},
		{Cmp{Op: Lt, L: Column("term"), R: Str("cake")}, []bool{true, false, false}},
		{Cmp{Op: Gt, L: Column("tf"), R: Int(1)}, []bool{true, false, true}},
		{Cmp{Op: Ge, L: Column("tf"), R: Int(2)}, []bool{true, false, true}},
		{Cmp{Op: Le, L: Column("idf"), R: Float(1.5)}, []bool{true, false, true}},
		// mixed int/float coercion
		{Cmp{Op: Lt, L: Column("tf"), R: Column("idf")}, []bool{false, true, false}},
	}
	for _, c := range cases {
		got := evalOK(t, c.e, r).(*vector.Bools).Values()
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("%s = %v, want %v", c.e.String(), got, c.want)
				break
			}
		}
	}
	if _, err := (Cmp{Op: Lt, L: Column("term"), R: Int(1)}).Eval(r); err == nil {
		t.Error("string vs int comparison should fail")
	}
}

func TestBoolConnectives(t *testing.T) {
	r := testRel()
	tfGt1 := Cmp{Op: Gt, L: Column("tf"), R: Int(1)}
	isBook := Cmp{Op: Eq, L: Column("term"), R: Str("book")}
	and := evalOK(t, And{L: tfGt1, R: isBook}, r).(*vector.Bools).Values()
	if !and[0] || and[1] || and[2] {
		t.Errorf("and = %v", and)
	}
	or := evalOK(t, Or{L: tfGt1, R: isBook}, r).(*vector.Bools).Values()
	if !or[0] || or[1] || !or[2] {
		t.Errorf("or = %v", or)
	}
	not := evalOK(t, Not{E: isBook}, r).(*vector.Bools).Values()
	if not[0] || !not[1] {
		t.Errorf("not = %v", not)
	}
	if _, err := (And{L: Column("tf"), R: isBook}).Eval(r); err == nil {
		t.Error("and over non-boolean should fail")
	}
	if _, err := (Not{E: Column("tf")}).Eval(r); err == nil {
		t.Error("not over non-boolean should fail")
	}
}

func TestArithmetic(t *testing.T) {
	r := testRel()
	sum := evalOK(t, Arith{Op: Add, L: Column("tf"), R: Int(1)}, r).(*vector.Int64s)
	if sum.At(0) != 4 {
		t.Errorf("tf+1 = %d", sum.At(0))
	}
	prod := evalOK(t, Arith{Op: Mul, L: Column("tf"), R: Column("idf")}, r).(*vector.Float64s)
	if math.Abs(prod.At(0)-4.5) > 1e-12 {
		t.Errorf("tf*idf = %g", prod.At(0))
	}
	div := evalOK(t, Arith{Op: Div, L: Column("tf"), R: Int(2)}, r).(*vector.Float64s)
	if div.At(0) != 1.5 {
		t.Errorf("tf/2 = %g (division must be float)", div.At(0))
	}
	diff := evalOK(t, Arith{Op: Sub, L: Column("tf"), R: Column("tf")}, r).(*vector.Int64s)
	if diff.At(1) != 0 {
		t.Errorf("tf-tf = %d", diff.At(1))
	}
	if _, err := (Arith{Op: Add, L: Column("term"), R: Int(1)}).Eval(r); err == nil {
		t.Error("arith over string should fail")
	}
}

func TestCallBuiltins(t *testing.T) {
	r := relation.NewBuilder([]string{"s", "x"}, []vector.Kind{vector.String, vector.Float64}).
		Add("Book", 4.0).Build()
	if v := evalOK(t, NewCall("lcase", Column("s")), r).(*vector.Strings); v.At(0) != "book" {
		t.Errorf("lcase = %q", v.At(0))
	}
	if v := evalOK(t, NewCall("ucase", Column("s")), r).(*vector.Strings); v.At(0) != "BOOK" {
		t.Errorf("ucase = %q", v.At(0))
	}
	if v := evalOK(t, NewCall("length", Column("s")), r).(*vector.Int64s); v.At(0) != 4 {
		t.Errorf("length = %d", v.At(0))
	}
	if v := evalOK(t, NewCall("log", Column("x")), r).(*vector.Float64s); math.Abs(v.At(0)-math.Log(4)) > 1e-12 {
		t.Errorf("log = %g", v.At(0))
	}
	if v := evalOK(t, NewCall("sqrt", Column("x")), r).(*vector.Float64s); v.At(0) != 2 {
		t.Errorf("sqrt = %g", v.At(0))
	}
	if v := evalOK(t, NewCall("greatest", Column("x"), Float(9)), r).(*vector.Float64s); v.At(0) != 9 {
		t.Errorf("greatest = %g", v.At(0))
	}
	if v := evalOK(t, NewCall("least", Column("x"), Float(9)), r).(*vector.Float64s); v.At(0) != 4 {
		t.Errorf("least = %g", v.At(0))
	}
	if _, err := NewCall("no-such-fn", Column("s")).Eval(r); err == nil {
		t.Error("unknown function should fail")
	}
	if _, err := NewCall("lcase", Column("x")).Eval(r); err == nil {
		t.Error("lcase over float should fail")
	}
	if _, err := NewCall("lcase").Eval(r); err == nil {
		t.Error("lcase with no args should fail")
	}
	if _, err := NewCall("log", Column("s")).Eval(r); err == nil {
		t.Error("log over string should fail")
	}
}

func TestRegisterAndLookupFunc(t *testing.T) {
	RegisterFunc(Func{Name: "TestFn", Eval: func(args []vector.Vector, n int) (vector.Vector, error) {
		return vector.FromInt64s(make([]int64, n)), nil
	}})
	if _, ok := LookupFunc("testfn"); !ok {
		t.Error("lookup is not case-insensitive")
	}
}

func TestCanonicalStrings(t *testing.T) {
	e := And{
		L: Cmp{Op: Eq, L: ColumnAt(2), R: Str("category")},
		R: Cmp{Op: Eq, L: ColumnAt(3), R: Str("toy")},
	}
	want := `(($2 = "category") and ($3 = "toy"))`
	if e.String() != want {
		t.Errorf("String = %s, want %s", e.String(), want)
	}
	c := NewCall("stem", NewCall("lcase", Column("token")), Str("sb-english"))
	if !strings.Contains(c.String(), `stem(lcase(token),"sb-english")`) {
		t.Errorf("call String = %s", c.String())
	}
}

// Property: comparison results agree with Go's comparison on random ints.
func TestCmpProperty(t *testing.T) {
	f := func(a, b int64) bool {
		r := relation.NewBuilder([]string{"a", "b"}, []vector.Kind{vector.Int64, vector.Int64}).
			Add(a, b).Build()
		for _, c := range []struct {
			op   CmpOp
			want bool
		}{
			{Eq, a == b}, {Ne, a != b}, {Lt, a < b}, {Le, a <= b}, {Gt, a > b}, {Ge, a >= b},
		} {
			v, err := (Cmp{Op: c.op, L: Column("a"), R: Column("b")}).Eval(r)
			if err != nil || v.(*vector.Bools).At(0) != c.want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
