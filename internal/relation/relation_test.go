package relation

import (
	"hash/maphash"
	"strings"
	"testing"
	"testing/quick"

	"irdb/internal/vector"
)

func triples() *Relation {
	return NewBuilder(
		[]string{"subject", "property", "object"},
		[]vector.Kind{vector.String, vector.String, vector.String},
	).
		Add("p1", "category", "toy").
		Add("p1", "description", "wooden train set").
		Add("p2", "category", "book").
		AddP(0.8, "p2", "description", "a history of toys").
		Build()
}

func TestBuilderAndAccessors(t *testing.T) {
	r := triples()
	if r.NumRows() != 4 || r.NumCols() != 3 {
		t.Fatalf("shape = %dx%d, want 4x3", r.NumRows(), r.NumCols())
	}
	if got := r.ColumnNames(); strings.Join(got, ",") != "subject,property,object" {
		t.Errorf("ColumnNames = %v", got)
	}
	if r.ColIndex("object") != 2 || r.ColIndex("nope") != -1 {
		t.Error("ColIndex wrong")
	}
	if _, err := r.ColByName("nope"); err == nil {
		t.Error("ColByName(nope) should fail")
	}
	p := r.Prob()
	if p[0] != 1.0 || p[3] != 0.8 {
		t.Errorf("Prob = %v", p)
	}
	if r.Kinds()[0] != vector.String {
		t.Error("Kinds wrong")
	}
}

func TestFromColumnsValidation(t *testing.T) {
	c1 := Column{Name: "a", Vec: vector.FromInt64s([]int64{1, 2})}
	c2 := Column{Name: "b", Vec: vector.FromInt64s([]int64{1})}
	if _, err := FromColumns([]Column{c1, c2}, nil); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := FromColumns(nil, nil); err == nil {
		t.Error("zero columns accepted")
	}
	dup := Column{Name: "a", Vec: vector.FromInt64s([]int64{3, 4})}
	if _, err := FromColumns([]Column{c1, dup}, nil); err == nil {
		t.Error("duplicate names accepted")
	}
	if _, err := FromColumns([]Column{c1}, []float64{0.5}); err == nil {
		t.Error("short prob column accepted")
	}
}

func TestGatherRows(t *testing.T) {
	r := triples()
	g := r.Gather([]int{3, 0})
	if g.NumRows() != 2 {
		t.Fatalf("NumRows = %d", g.NumRows())
	}
	if got := g.Col(0).Vec.Format(0); got != "p2" {
		t.Errorf("row 0 subject = %q", got)
	}
	if g.Prob()[0] != 0.8 || g.Prob()[1] != 1.0 {
		t.Errorf("Prob = %v", g.Prob())
	}
}

func TestWithColumnsAndRenamed(t *testing.T) {
	r := triples()
	w, err := r.WithColumns("object", "subject")
	if err != nil {
		t.Fatal(err)
	}
	if w.NumCols() != 2 || w.Col(0).Name != "object" {
		t.Errorf("WithColumns shape wrong: %v", w.ColumnNames())
	}
	if _, err := r.WithColumns("missing"); err == nil {
		t.Error("WithColumns(missing) should fail")
	}
	rn, err := w.Renamed([]string{"data", "docID"})
	if err != nil {
		t.Fatal(err)
	}
	if rn.Col(1).Name != "docID" {
		t.Errorf("Renamed = %v", rn.ColumnNames())
	}
	if _, err := w.Renamed([]string{"one"}); err == nil {
		t.Error("Renamed with wrong arity should fail")
	}
}

func TestSortedByColumnAndProb(t *testing.T) {
	r := triples()
	s := r.Sorted([]SortKey{{Col: ProbCol, Desc: true}, {Col: 0}})
	p := s.Prob()
	for i := 1; i < len(p); i++ {
		if p[i] > p[i-1] {
			t.Fatalf("prob not descending: %v", p)
		}
	}
	s2 := r.Sorted([]SortKey{{Col: 1}, {Col: 0}})
	props := s2.Col(1).Vec.(*vector.Strings).Values()
	for i := 1; i < len(props); i++ {
		if props[i] < props[i-1] {
			t.Fatalf("property not ascending: %v", props)
		}
	}
}

func TestSortedIsStable(t *testing.T) {
	r := NewBuilder([]string{"k", "v"}, []vector.Kind{vector.Int64, vector.Int64}).
		Add(1, 10).Add(1, 20).Add(0, 30).Add(1, 40).Build()
	s := r.Sorted([]SortKey{{Col: 0}})
	vs := s.Col(1).Vec.(*vector.Int64s).Values()
	want := []int64{30, 10, 20, 40}
	for i := range want {
		if vs[i] != want[i] {
			t.Fatalf("stable sort violated: %v", vs)
		}
	}
}

func TestHashRowsMatchesRowsEqual(t *testing.T) {
	r := triples()
	seed := maphash.MakeSeed()
	h := r.HashRows(seed, []int{0})
	// p1 appears at rows 0 and 1; p2 at rows 2 and 3.
	if h[0] != h[1] || h[2] != h[3] {
		t.Error("equal keys hashed differently")
	}
	if !r.RowsEqual(0, []int{0}, r, 1, []int{0}) {
		t.Error("RowsEqual(0,1) on subject = false")
	}
	if r.RowsEqual(0, []int{0}, r, 2, []int{0}) {
		t.Error("RowsEqual(0,2) on subject = true")
	}
}

func TestSetProbPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SetProb with wrong length did not panic")
		}
	}()
	triples().SetProb([]float64{1})
}

func TestFormatContainsHeaderAndCap(t *testing.T) {
	r := triples()
	out := r.Format(2)
	if !strings.Contains(out, "subject") || !strings.Contains(out, "p") {
		t.Errorf("missing header: %s", out)
	}
	if !strings.Contains(out, "(4 rows total)") {
		t.Errorf("missing truncation note: %s", out)
	}
	if len(r.String()) == 0 {
		t.Error("String() empty")
	}
}

// Property: Sorted is a permutation — same multiset of values.
func TestSortedIsPermutationProperty(t *testing.T) {
	f := func(vals []int64) bool {
		if len(vals) == 0 {
			return true
		}
		r := MustFromColumns([]Column{{Name: "x", Vec: vector.FromInt64s(vals)}}, nil)
		s := r.Sorted([]SortKey{{Col: 0}})
		count := map[int64]int{}
		for _, v := range vals {
			count[v]++
		}
		got := s.Col(0).Vec.(*vector.Int64s).Values()
		for _, v := range got {
			count[v]--
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
