// Package fault mirrors the shape of irdb/internal/fault for fixtures:
// the analyzer matches `defer fault.Recover(...)` by package base name.
package fault

// Recover converts an in-flight panic into an error at *err.
func Recover(op string, err *error) {}
