// Package strategy implements the abstraction layer of section 2.4: search
// strategies are directed acyclic graphs of building blocks, "a convenient
// way to express complex search scenarios declaratively without
// programming efforts". Each block compiles to a relational plan; the
// per-block plans are "combined automatically under the hood".
//
// A strategy is serializable to JSON (the moral equivalent of the paper's
// visual design environment saving a strategy) and is compiled against a
// query string into a single engine plan.
package strategy

import (
	"encoding/json"
	"fmt"
	"sort"

	"irdb/internal/engine"
	"irdb/internal/ir"
	"irdb/internal/text"
)

// Block is one building block of a strategy.
type Block struct {
	// ID names the block within the strategy.
	ID string `json:"id"`
	// Type selects the block behaviour (see blocks.go for the registry).
	Type string `json:"type"`
	// Params configures the block; keys depend on Type.
	Params map[string]any `json:"params,omitempty"`
	// Inputs lists the IDs of the blocks feeding this one, in order.
	Inputs []string `json:"inputs,omitempty"`
}

// Strategy is a named DAG of blocks. Output names the block whose result
// is the strategy's result.
type Strategy struct {
	Name   string  `json:"name"`
	Blocks []Block `json:"blocks"`
	Output string  `json:"output"`
}

// Compiler binds the collection-independent strategy to a concrete query
// and retrieval configuration — the runtime inputs of Figure 2, where the
// query-terms list enters the Rank block from the right.
type Compiler struct {
	// Query is the user's keyword query (the website search-bar input of
	// section 3).
	Query string
	// IRParams configures ranking blocks; zero value means
	// ir.DefaultParams().
	IRParams ir.Params
	// Synonyms feeds "expand": true ranking blocks (query expansion with
	// synonyms, production strategy of section 3).
	Synonyms text.SynonymDict
}

// Validate checks structural soundness: unique block IDs, defined inputs,
// a defined output, known types, correct arity, and acyclicity.
func (s *Strategy) Validate() error {
	if len(s.Blocks) == 0 {
		return fmt.Errorf("strategy %q: no blocks", s.Name)
	}
	byID := map[string]*Block{}
	for i := range s.Blocks {
		b := &s.Blocks[i]
		if b.ID == "" {
			return fmt.Errorf("strategy %q: block %d has empty id", s.Name, i)
		}
		if _, dup := byID[b.ID]; dup {
			return fmt.Errorf("strategy %q: duplicate block id %q", s.Name, b.ID)
		}
		byID[b.ID] = b
	}
	if s.Output == "" {
		return fmt.Errorf("strategy %q: no output block", s.Name)
	}
	if _, ok := byID[s.Output]; !ok {
		return fmt.Errorf("strategy %q: output block %q not defined", s.Name, s.Output)
	}
	for _, b := range s.Blocks {
		spec, ok := blockTypes[b.Type]
		if !ok {
			return fmt.Errorf("strategy %q: block %q has unknown type %q (known: %v)",
				s.Name, b.ID, b.Type, BlockTypeNames())
		}
		if spec.minInputs == spec.maxInputs && len(b.Inputs) != spec.minInputs {
			return fmt.Errorf("strategy %q: block %q (%s) wants %d input(s), has %d",
				s.Name, b.ID, b.Type, spec.minInputs, len(b.Inputs))
		}
		if len(b.Inputs) < spec.minInputs || (spec.maxInputs >= 0 && len(b.Inputs) > spec.maxInputs) {
			return fmt.Errorf("strategy %q: block %q (%s) wants between %d and %d inputs, has %d",
				s.Name, b.ID, b.Type, spec.minInputs, spec.maxInputs, len(b.Inputs))
		}
		for _, in := range b.Inputs {
			if _, ok := byID[in]; !ok {
				return fmt.Errorf("strategy %q: block %q references undefined input %q", s.Name, b.ID, in)
			}
		}
	}
	// Cycle check via DFS from every node (the graph is small).
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(id string) error
	visit = func(id string) error {
		switch color[id] {
		case grey:
			return fmt.Errorf("strategy %q: cycle through block %q", s.Name, id)
		case black:
			return nil
		}
		color[id] = grey
		for _, in := range byID[id].Inputs {
			if err := visit(in); err != nil {
				return err
			}
		}
		color[id] = black
		return nil
	}
	ids := make([]string, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if err := visit(id); err != nil {
			return err
		}
	}
	return nil
}

// CompileOptimized lowers the strategy and runs the plan through ctx's
// optimizer — the form executors should prefer: machine-generated
// strategies compile to naive plan shapes (selections above joins,
// full-width scans) that the optimizer is built to clean up. Results are
// bit-identical to executing the Compile output directly.
func (s *Strategy) CompileOptimized(c *Compiler, ctx *engine.Ctx) (engine.Node, error) {
	plan, err := s.Compile(c)
	if err != nil {
		return nil, err
	}
	return ctx.Optimize(plan), nil
}

// Compile lowers the strategy into one engine plan producing a ranked
// (subject) relation with scores as tuple probabilities.
func (s *Strategy) Compile(c *Compiler) (engine.Node, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if c == nil {
		c = &Compiler{}
	}
	if c.IRParams.Stemmer == "" {
		c.IRParams = ir.DefaultParams()
	}
	byID := map[string]Block{}
	for _, b := range s.Blocks {
		byID[b.ID] = b
	}
	compiled := map[string]engine.Node{}
	var build func(id string) (engine.Node, error)
	build = func(id string) (engine.Node, error) {
		if n, ok := compiled[id]; ok {
			return n, nil
		}
		b := byID[id]
		inputs := make([]engine.Node, len(b.Inputs))
		for i, in := range b.Inputs {
			n, err := build(in)
			if err != nil {
				return nil, err
			}
			inputs[i] = n
		}
		spec := blockTypes[b.Type]
		n, err := spec.compile(c, b, inputs)
		if err != nil {
			return nil, fmt.Errorf("strategy %q: block %q: %w", s.Name, b.ID, err)
		}
		compiled[id] = n
		return n, nil
	}
	return build(s.Output)
}

// NumBlocks reports the number of blocks, the complexity measure of the
// "understandable at a glance" claim of section 3.
func (s *Strategy) NumBlocks() int { return len(s.Blocks) }

// MarshalJSON/Unmarshal round-trip through the plain struct shape; these
// helpers load and save strategy files.

// FromJSON decodes and validates a strategy.
func FromJSON(data []byte) (*Strategy, error) {
	var s Strategy
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("strategy: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// ToJSON encodes the strategy, indented for readability.
func (s *Strategy) ToJSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
